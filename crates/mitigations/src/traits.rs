//! The interface between the memory controller and a RowHammer mitigation mechanism.

use crate::stats::MitigationStats;
use comet_dram::{Cycle, DramAddr};

/// Actions a mitigation mechanism asks the memory controller to carry out in
/// response to a row activation.
///
/// A response may combine several actions (e.g. Hydra may both fetch a counter
/// from DRAM and request a preventive refresh). The controller interprets the
/// fields as follows:
///
/// * `refresh_victims` — rows to preventively refresh (one ACT + PRE each),
///   prioritized over pending demand requests (paper §7.2.2);
/// * `refresh_rank` — perform an *early preventive refresh*: issue
///   `tREFW / tREFI` back-to-back REF commands to the rank of the activated
///   row and then call
///   [`RowHammerMitigation::on_rank_refreshed`] so the mechanism can reset its
///   counters (paper §4.2);
/// * `counter_reads` / `counter_writes` — number of DRAM accesses the
///   mechanism performs for its own metadata (Hydra's row-count table); the
///   controller injects that many high-priority requests and charges their
///   latency to the triggering activation;
/// * `throttle_cycles` — the activation may only be re-issued after this many
///   cycles (BlockHammer-style throttling); `0` means no throttling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MitigationResponse {
    /// Victim rows to preventively refresh.
    pub refresh_victims: Vec<DramAddr>,
    /// Refresh every row of the activated row's rank and reset the tracker.
    pub refresh_rank: bool,
    /// Metadata reads the mechanism performs in DRAM.
    pub counter_reads: u32,
    /// Metadata writes the mechanism performs in DRAM.
    pub counter_writes: u32,
    /// Delay before the activation may proceed (0 = proceed immediately).
    pub throttle_cycles: Cycle,
}

impl MitigationResponse {
    /// A response requiring no controller action.
    pub fn none() -> Self {
        Self::default()
    }

    /// A response that preventively refreshes `victims`.
    pub fn refresh(victims: Vec<DramAddr>) -> Self {
        MitigationResponse { refresh_victims: victims, ..Default::default() }
    }

    /// Whether the response requires any controller action at all.
    pub fn is_nop(&self) -> bool {
        self.refresh_victims.is_empty()
            && !self.refresh_rank
            && self.counter_reads == 0
            && self.counter_writes == 0
            && self.throttle_cycles == 0
    }
}

/// A RowHammer mitigation mechanism living in the memory controller.
///
/// The controller calls [`on_activation`](Self::on_activation) for every ACT
/// command it issues and executes the returned [`MitigationResponse`].
/// Implementations must be deterministic given their construction-time seed so
/// experiments are reproducible.
///
/// `Send` is a supertrait so that a per-channel mechanism instance can live
/// inside a controller shard that runs on a worker thread of the parallel
/// experiment executor.
pub trait RowHammerMitigation: Send {
    /// Short, stable mechanism name used in experiment reports (e.g. `"CoMeT"`).
    fn name(&self) -> &str;

    /// Notifies the mechanism that row `addr` was activated at cycle `now`.
    ///
    /// `weight` is the number of equivalent activations to charge (1 for a
    /// plain activation; more when RowPress-adjusted accounting is enabled).
    fn on_activation(&mut self, addr: &DramAddr, now: Cycle, weight: u64) -> MitigationResponse;

    /// Notifies the mechanism of a batch of activations in one call.
    ///
    /// `batch` entries are `(address, cycle, weight)` in nondecreasing cycle
    /// order; the returned responses correspond to the entries in order and
    /// are exactly what per-entry [`on_activation`](Self::on_activation)
    /// calls would have produced. The default implementation is that loop;
    /// mechanisms can override it to amortize per-activation overhead
    /// (epoch checks, repeated lookups of a hot bank's tables) over the
    /// batch, as long as the responses stay bit-identical.
    fn on_activations(&mut self, batch: &[(DramAddr, Cycle, u64)]) -> Vec<MitigationResponse> {
        batch.iter().map(|(addr, now, weight)| self.on_activation(addr, *now, *weight)).collect()
    }

    /// Notifies the mechanism that a periodic REF command was issued to `rank`.
    fn on_periodic_refresh(&mut self, _rank: usize, _now: Cycle) {}

    /// Gives the mechanism an opportunity to perform time-based work
    /// (e.g. CoMeT's periodic counter reset).
    ///
    /// The controller calls this on every tick it performs, and additionally
    /// guarantees a tick at [`next_tick_deadline`](Self::next_tick_deadline)
    /// even on an otherwise idle channel — so time-based bookkeeping must be
    /// *scheduled* through the deadline, not assumed to run on a fixed
    /// cadence. (Historically the controller clamped every next-event bound
    /// to `now + tREFI` so `on_tick` ran at least once per refresh interval;
    /// that clamp is gone, which is what lets an idle channel shard report
    /// its full idle window to the shard-parallel simulation engine.)
    fn on_tick(&mut self, _now: Cycle) {}

    /// The next cycle at which the mechanism needs [`on_tick`](Self::on_tick)
    /// to run (its next scheduled periodic-reset boundary), or `Cycle::MAX`
    /// when it has no time-based work. The controller folds this into its
    /// next-event bound, so the deadline is honored exactly even when the
    /// channel is otherwise idle. Mechanisms with periodic state (epoch
    /// rotations, counter resets) must keep this current; returning a stale
    /// early value only costs a no-op wakeup, but returning a value past the
    /// true boundary would delay the reset.
    fn next_tick_deadline(&self) -> Cycle {
        Cycle::MAX
    }

    /// Notifies the mechanism that the controller finished refreshing every row
    /// of `rank` (in response to `refresh_rank`), so saturated state can be reset.
    fn on_rank_refreshed(&mut self, _rank: usize, _now: Cycle) {}

    /// Extra cycles of bank busy time added to *every* activation by the
    /// mechanism (REGA's refresh-generating activations). `0` for most mechanisms.
    fn act_latency_penalty(&self) -> Cycle {
        0
    }

    /// Statistics accumulated since construction (or the last [`Self::reset_stats`]).
    fn stats(&self) -> MitigationStats;

    /// Clears the statistics (e.g. after the warmup phase of a simulation).
    fn reset_stats(&mut self);

    /// Processor-side storage the mechanism requires, in bits, for the whole
    /// channel it protects. Used for cross-checking the analytic area model.
    fn storage_bits(&self) -> u64;

    /// Cold-path structure gauges for the telemetry layer: `(name, value)`
    /// pairs describing internal tracker state the [`MitigationStats`]
    /// counters cannot see (cache occupancy, sketch saturation). Called once
    /// at run end — never on the activation path — and surfaced as
    /// `comet_tracker_<name>` gauges labeled by mechanism and channel.
    /// Mechanisms without interesting internal structure report nothing.
    fn telemetry_gauges(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }

    /// An activation *weight budget* the mechanism guarantees to absorb
    /// without any observable reaction, given its current state.
    ///
    /// If the next activations notified to the mechanism carry a total weight
    /// of at most this value, then — barring an intervening periodic boundary
    /// ([`next_tick_deadline`](Self::next_tick_deadline)), rank refresh, or
    /// periodic refresh, all of which invalidate the promise — every one of
    /// those [`on_activation`](Self::on_activation) calls would return a
    /// [nop](MitigationResponse::is_nop) response. The memory controller uses
    /// this *quiescent credit* to defer activation notifications and deliver
    /// them later as one [`on_activations`](Self::on_activations) batch: the
    /// deferred calls replay with their original cycles, so mechanism state
    /// and statistics come out bit-identical, only the call arity changes.
    ///
    /// The default of `0` opts out (every activation is delivered
    /// immediately), which is always sound. Overriding mechanisms must be
    /// conservative: the credit is a *proof*, and an overrun — a deferred
    /// activation whose replayed response is not a nop — is a simulator bug
    /// (the controller `debug_assert`s it). The method may scan internal
    /// tables; it is called once per batch refill, not per activation.
    fn quiescent_activations(&self) -> u64 {
        0
    }

    /// Clones the mechanism into a boxed trait object — the snapshot half of
    /// the speculative engine's checkpoint/restore seam (and what lets a
    /// controller shard be checkpointed wholesale). Implemented for every
    /// mechanism by [`impl_mitigation_checkpoint!`](crate::impl_mitigation_checkpoint).
    fn checkpoint(&self) -> Box<dyn RowHammerMitigation>;

    /// Restores the mechanism to a state previously captured by
    /// [`checkpoint`](Self::checkpoint). Panics if `checkpoint` holds a
    /// different concrete mechanism type: checkpoints never travel between
    /// mechanisms, so a mismatch is a simulator bug, not a recoverable error.
    fn restore(&mut self, checkpoint: &dyn RowHammerMitigation);

    /// The mechanism as [`Any`](std::any::Any), so
    /// [`restore`](Self::restore) can downcast a checkpoint back to the
    /// concrete type.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Implements the [`RowHammerMitigation`] checkpoint/restore seam
/// (`checkpoint` / `restore` / `as_any`) for a `Clone + 'static` mechanism.
/// Invoke *inside* the mechanism's `impl RowHammerMitigation for …` block:
///
/// ```rust,ignore
/// impl RowHammerMitigation for PerRowCounters {
///     comet_mitigations::impl_mitigation_checkpoint!(PerRowCounters);
///     // … the mechanism-specific methods …
/// }
/// ```
#[macro_export]
macro_rules! impl_mitigation_checkpoint {
    ($mechanism:ty) => {
        fn checkpoint(&self) -> ::std::boxed::Box<dyn $crate::RowHammerMitigation> {
            ::std::boxed::Box::new(::std::clone::Clone::clone(self))
        }

        fn restore(&mut self, checkpoint: &dyn $crate::RowHammerMitigation) {
            let snapshot = checkpoint
                .as_any()
                .downcast_ref::<$mechanism>()
                .expect(concat!("checkpoint is not a ", stringify!($mechanism)));
            ::std::clone::Clone::clone_from(self, snapshot);
        }

        fn as_any(&self) -> &dyn ::std::any::Any {
            self
        }
    };
}

/// Builds one independent mitigation instance per memory-channel shard.
///
/// The sharded memory system in `comet-sim` owns one controller — and thus
/// one tracker — per channel, mirroring how per-channel RowHammer trackers
/// are instantiated in hardware. A factory captures everything needed to
/// construct a mechanism (configuration, threshold, seed) so that shards can
/// be built lazily, per channel, possibly from worker threads (`Send + Sync`).
pub trait MitigationFactory: Send + Sync {
    /// Short, stable mechanism name (matches the built instances' `name()`).
    fn name(&self) -> &str;

    /// Builds the mechanism instance protecting `channel`.
    ///
    /// Instances for different channels must be independent: mutating one
    /// shard's tracker state must never affect another's. Probabilistic
    /// mechanisms should derive per-channel randomness from `channel` so that
    /// shards do not replay identical decision streams.
    fn build(&self, channel: usize) -> Box<dyn RowHammerMitigation>;
}

/// A [`MitigationFactory`] wrapping a closure — the easiest way to adapt a
/// concrete mechanism constructor.
///
/// ```rust
/// use comet_mitigations::{FnFactory, MitigationFactory, NoMitigation};
///
/// let factory = FnFactory::new("Baseline", |_channel| Box::new(NoMitigation::new()));
/// assert_eq!(factory.build(0).name(), "Baseline");
/// ```
pub struct FnFactory {
    name: String,
    build: Box<dyn Fn(usize) -> Box<dyn RowHammerMitigation> + Send + Sync>,
}

impl FnFactory {
    /// Creates a factory calling `build` for every channel.
    pub fn new(
        name: impl Into<String>,
        build: impl Fn(usize) -> Box<dyn RowHammerMitigation> + Send + Sync + 'static,
    ) -> Self {
        FnFactory { name: name.into(), build: Box::new(build) }
    }
}

impl MitigationFactory for FnFactory {
    fn name(&self) -> &str {
        &self.name
    }

    fn build(&self, channel: usize) -> Box<dyn RowHammerMitigation> {
        (self.build)(channel)
    }
}

impl std::fmt::Debug for FnFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnFactory").field("name", &self.name).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_response_is_nop() {
        assert!(MitigationResponse::none().is_nop());
        assert!(MitigationResponse::default().is_nop());
    }

    #[test]
    fn refresh_response_is_not_nop() {
        let addr = DramAddr { channel: 0, rank: 0, bank_group: 0, bank: 0, row: 5, column: 0 };
        let r = MitigationResponse::refresh(vec![addr]);
        assert!(!r.is_nop());
        assert_eq!(r.refresh_victims.len(), 1);
    }

    #[test]
    fn throttle_only_response_is_not_nop() {
        let r = MitigationResponse { throttle_cycles: 10, ..Default::default() };
        assert!(!r.is_nop());
    }

    #[test]
    fn counter_traffic_response_is_not_nop() {
        let r = MitigationResponse { counter_reads: 1, ..Default::default() };
        assert!(!r.is_nop());
        let w = MitigationResponse { counter_writes: 1, ..Default::default() };
        assert!(!w.is_nop());
    }

    #[test]
    fn fn_factory_builds_independent_instances() {
        let factory = FnFactory::new("Baseline", |_channel| {
            Box::new(crate::NoMitigation::new()) as Box<dyn RowHammerMitigation>
        });
        assert_eq!(factory.name(), "Baseline");
        let addr = DramAddr { channel: 0, rank: 0, bank_group: 0, bank: 0, row: 5, column: 0 };
        let mut a = factory.build(0);
        let b = factory.build(1);
        a.on_activation(&addr, 0, 1);
        assert_eq!(a.stats().activations_observed, 1);
        assert_eq!(b.stats().activations_observed, 0, "instances must not share state");
    }

    #[test]
    fn batched_activations_match_the_per_activation_loop() {
        use comet_dram::{DramGeometry, TimingParams};

        let geometry = DramGeometry::paper_default();
        let timing = TimingParams::ddr4_2400();
        let config = crate::GrapheneConfig::for_threshold(500, &timing, &geometry);
        let mut batched = crate::Graphene::new(config.clone(), geometry.clone());
        let mut looped = crate::Graphene::new(config, geometry);

        let batch: Vec<(DramAddr, Cycle, u64)> = (0..600u64)
            .map(|i| {
                let addr = DramAddr {
                    channel: 0,
                    rank: 0,
                    bank_group: 0,
                    bank: 0,
                    row: (i % 3) as usize,
                    column: 0,
                };
                (addr, i * 20, 1)
            })
            .collect();

        let responses = batched.on_activations(&batch);
        assert_eq!(responses.len(), batch.len());
        for (response, (addr, now, weight)) in responses.iter().zip(&batch) {
            assert_eq!(*response, looped.on_activation(addr, *now, *weight));
        }
        assert_eq!(batched.stats(), looped.stats());
        assert!(responses.iter().any(|r| !r.is_nop()), "the hammer batch must trigger refreshes");
    }

    #[test]
    fn mechanisms_are_send() {
        fn assert_send<T: Send + ?Sized>() {}
        assert_send::<dyn RowHammerMitigation>();
        assert_send::<Box<dyn RowHammerMitigation>>();
    }
}
