//! Statistics every mitigation mechanism reports.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a RowHammer mitigation mechanism during a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MitigationStats {
    /// Row activations observed.
    pub activations_observed: u64,
    /// Victim rows preventively refreshed (each costs one ACT + PRE).
    pub preventive_refreshes: u64,
    /// Times a row was identified as an aggressor (reached the preventive threshold).
    pub aggressors_identified: u64,
    /// Rank-level early preventive refreshes performed.
    pub early_rank_refreshes: u64,
    /// Metadata reads issued to DRAM (Hydra's row count table).
    pub counter_reads: u64,
    /// Metadata writes issued to DRAM.
    pub counter_writes: u64,
    /// Activations delayed by throttling (BlockHammer).
    pub throttled_activations: u64,
    /// Total cycles of throttling delay imposed.
    pub throttle_cycles: u64,
    /// Periodic tracker resets performed.
    pub periodic_resets: u64,
}

impl MitigationStats {
    /// Preventive refreshes per observed activation — the headline overhead driver.
    pub fn preventive_refresh_rate(&self) -> f64 {
        if self.activations_observed == 0 {
            0.0
        } else {
            self.preventive_refreshes as f64 / self.activations_observed as f64
        }
    }

    /// DRAM metadata accesses per observed activation.
    pub fn counter_traffic_rate(&self) -> f64 {
        if self.activations_observed == 0 {
            0.0
        } else {
            (self.counter_reads + self.counter_writes) as f64 / self.activations_observed as f64
        }
    }

    /// The counters as `(name, value)` pairs, in field order — the telemetry
    /// publisher iterates this instead of naming each field, so a counter
    /// added here automatically reaches the metrics registry.
    pub fn named_counts(&self) -> [(&'static str, u64); 9] {
        [
            ("activations_observed", self.activations_observed),
            ("preventive_refreshes", self.preventive_refreshes),
            ("aggressors_identified", self.aggressors_identified),
            ("early_rank_refreshes", self.early_rank_refreshes),
            ("counter_reads", self.counter_reads),
            ("counter_writes", self.counter_writes),
            ("throttled_activations", self.throttled_activations),
            ("throttle_cycles", self.throttle_cycles),
            ("periodic_resets", self.periodic_resets),
        ]
    }

    /// Field-wise sum (`self + other`), used to aggregate per-channel shards.
    pub fn merged(&self, other: &MitigationStats) -> MitigationStats {
        MitigationStats {
            activations_observed: self.activations_observed + other.activations_observed,
            preventive_refreshes: self.preventive_refreshes + other.preventive_refreshes,
            aggressors_identified: self.aggressors_identified + other.aggressors_identified,
            early_rank_refreshes: self.early_rank_refreshes + other.early_rank_refreshes,
            counter_reads: self.counter_reads + other.counter_reads,
            counter_writes: self.counter_writes + other.counter_writes,
            throttled_activations: self.throttled_activations + other.throttled_activations,
            throttle_cycles: self.throttle_cycles + other.throttle_cycles,
            periodic_resets: self.periodic_resets + other.periodic_resets,
        }
    }

    /// Field-wise difference (`self - earlier`), used for warmup exclusion.
    pub fn delta_since(&self, earlier: &MitigationStats) -> MitigationStats {
        MitigationStats {
            activations_observed: self.activations_observed - earlier.activations_observed,
            preventive_refreshes: self.preventive_refreshes - earlier.preventive_refreshes,
            aggressors_identified: self.aggressors_identified - earlier.aggressors_identified,
            early_rank_refreshes: self.early_rank_refreshes - earlier.early_rank_refreshes,
            counter_reads: self.counter_reads - earlier.counter_reads,
            counter_writes: self.counter_writes - earlier.counter_writes,
            throttled_activations: self.throttled_activations - earlier.throttled_activations,
            throttle_cycles: self.throttle_cycles - earlier.throttle_cycles,
            periodic_resets: self.periodic_resets - earlier.periodic_resets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_zero_without_activations() {
        let s = MitigationStats::default();
        assert_eq!(s.preventive_refresh_rate(), 0.0);
        assert_eq!(s.counter_traffic_rate(), 0.0);
    }

    #[test]
    fn rates_divide_by_activations() {
        let s = MitigationStats {
            activations_observed: 100,
            preventive_refreshes: 10,
            counter_reads: 4,
            counter_writes: 6,
            ..Default::default()
        };
        assert!((s.preventive_refresh_rate() - 0.1).abs() < 1e-12);
        assert!((s.counter_traffic_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn merged_sums_and_delta_subtracts() {
        let a = MitigationStats { activations_observed: 10, preventive_refreshes: 2, ..Default::default() };
        let b = MitigationStats { activations_observed: 5, preventive_refreshes: 1, ..Default::default() };
        let sum = a.merged(&b);
        assert_eq!(sum.activations_observed, 15);
        assert_eq!(sum.preventive_refreshes, 3);
        let delta = sum.delta_since(&b);
        assert_eq!(delta, a);
    }
}
