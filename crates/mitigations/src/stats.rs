//! Statistics every mitigation mechanism reports.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a RowHammer mitigation mechanism during a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MitigationStats {
    /// Row activations observed.
    pub activations_observed: u64,
    /// Victim rows preventively refreshed (each costs one ACT + PRE).
    pub preventive_refreshes: u64,
    /// Times a row was identified as an aggressor (reached the preventive threshold).
    pub aggressors_identified: u64,
    /// Rank-level early preventive refreshes performed.
    pub early_rank_refreshes: u64,
    /// Metadata reads issued to DRAM (Hydra's row count table).
    pub counter_reads: u64,
    /// Metadata writes issued to DRAM.
    pub counter_writes: u64,
    /// Activations delayed by throttling (BlockHammer).
    pub throttled_activations: u64,
    /// Total cycles of throttling delay imposed.
    pub throttle_cycles: u64,
    /// Periodic tracker resets performed.
    pub periodic_resets: u64,
}

impl MitigationStats {
    /// Preventive refreshes per observed activation — the headline overhead driver.
    pub fn preventive_refresh_rate(&self) -> f64 {
        if self.activations_observed == 0 {
            0.0
        } else {
            self.preventive_refreshes as f64 / self.activations_observed as f64
        }
    }

    /// DRAM metadata accesses per observed activation.
    pub fn counter_traffic_rate(&self) -> f64 {
        if self.activations_observed == 0 {
            0.0
        } else {
            (self.counter_reads + self.counter_writes) as f64 / self.activations_observed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_zero_without_activations() {
        let s = MitigationStats::default();
        assert_eq!(s.preventive_refresh_rate(), 0.0);
        assert_eq!(s.counter_traffic_rate(), 0.0);
    }

    #[test]
    fn rates_divide_by_activations() {
        let s = MitigationStats {
            activations_observed: 100,
            preventive_refreshes: 10,
            counter_reads: 4,
            counter_writes: 6,
            ..Default::default()
        };
        assert!((s.preventive_refresh_rate() - 0.1).abs() < 1e-12);
        assert!((s.counter_traffic_rate() - 0.1).abs() < 1e-12);
    }
}
