//! Graphene: Misra-Gries-based aggressor tracking (Park et al., MICRO 2020).

use crate::hashers::IntMap;
use crate::stats::MitigationStats;
use crate::traits::{MitigationResponse, RowHammerMitigation};
use comet_dram::{Cycle, DramAddr, DramGeometry, TimingParams};

/// Configuration of the Graphene tracker.
///
/// Graphene runs the Misra-Gries frequent-item algorithm per bank with
/// `entries_per_bank` tagged counters and a spillover counter. A row whose
/// counter reaches a multiple of `prevention_threshold` has its neighbours
/// preventively refreshed. The table is reset every `reset_period` cycles.
///
/// `for_threshold` sizes the table the way the Graphene paper does: with a
/// table reset period of `tREFW / reset_divisor`, at most
/// `W = max ACTs per bank per reset period` activations can occur, so
/// `W / prevention_threshold + 1` entries suffice to guarantee that any row
/// activated `prevention_threshold` times is present in the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrapheneConfig {
    /// RowHammer threshold the mechanism must defend against.
    pub nrh: u64,
    /// Counter value at which victims are preventively refreshed.
    pub prevention_threshold: u64,
    /// Misra-Gries entries per bank.
    pub entries_per_bank: usize,
    /// Tracker state is cleared every this many cycles.
    pub reset_period: Cycle,
    /// Row-tag width in bits (for storage accounting).
    pub tag_bits: u32,
}

impl GrapheneConfig {
    /// Sizes Graphene for `nrh` under `timing`, as described in the Graphene
    /// paper and used by the CoMeT paper's comparison (§6): reset period
    /// `tREFW/2`, prevention threshold `NRH/4`, and enough entries to cover the
    /// worst-case activation count of one bank in a reset period.
    pub fn for_threshold(nrh: u64, timing: &TimingParams, geometry: &DramGeometry) -> Self {
        let reset_divisor = 2;
        let reset_period = timing.t_refw / reset_divisor;
        let prevention_threshold = (nrh / 4).max(1);
        let max_acts = reset_period / timing.t_rc;
        let entries_per_bank = (max_acts / prevention_threshold + 1) as usize;
        GrapheneConfig {
            nrh,
            prevention_threshold,
            entries_per_bank,
            reset_period,
            tag_bits: geometry.row_bits(),
        }
    }

    /// Counter width needed to count up to the prevention threshold.
    pub fn counter_bits(&self) -> u32 {
        64 - self.prevention_threshold.leading_zeros()
    }

    /// Storage in bits for one bank's table (tags + counters + spillover counter).
    pub fn storage_bits_per_bank(&self) -> u64 {
        let entry_bits = (self.tag_bits + self.counter_bits()) as u64;
        self.entries_per_bank as u64 * entry_bits + self.counter_bits() as u64
    }
}

/// One Misra-Gries entry: the activation-count estimate and the last multiple
/// of the prevention threshold at which the row's victims were refreshed.
///
/// Keeping the refresh level next to the count means one table probe serves
/// the whole per-activation decision; the previous layout paid a second
/// per-bank `HashMap<row, level>` lookup on every over-threshold activation.
#[derive(Debug, Clone, Copy, Default)]
struct MgEntry {
    count: u64,
    refreshed: u64,
}

/// Per-bank Misra-Gries table.
#[derive(Debug, Clone, Default)]
struct MisraGriesTable {
    /// Row → (count, refresh level).
    entries: IntMap<usize, MgEntry>,
    /// Rows in insertion order, driving the table-full victim scan. The scan
    /// has a *fixed* order (oldest insertion first), where the former
    /// `HashMap::iter().find` walk picked whichever eligible entry the
    /// hasher happened to enumerate first.
    order: Vec<usize>,
    /// Refresh levels of rows the table no longer (or never) tracks, so an
    /// evicted-and-reinserted aggressor is not refreshed twice at one level.
    spilled_refreshed: IntMap<usize, u64>,
    /// Spillover counter: lower bound for rows not in the table.
    spillover: u64,
}

impl MisraGriesTable {
    /// Performs one Misra-Gries update and returns the row's updated estimate
    /// and whether it just crossed a new multiple of `threshold` (meaning its
    /// victims must be refreshed now).
    fn update(&mut self, row: usize, weight: u64, capacity: usize, threshold: u64) -> (u64, bool) {
        if let Some(e) = self.entries.get_mut(&row) {
            e.count += weight;
            // Below the threshold the level is 0 by definition; comparing
            // first keeps the expensive 64-bit division (a third of the
            // per-activation budget) off the common below-threshold path.
            let fresh = e.count >= threshold && Self::crossed(&mut e.refreshed, e.count / threshold);
            return (e.count, fresh);
        }
        if self.entries.len() < capacity {
            let mut e = MgEntry { count: self.spillover + weight, refreshed: self.take_spilled_level(row) };
            let fresh = e.count >= threshold && Self::crossed(&mut e.refreshed, e.count / threshold);
            self.order.push(row);
            self.entries.insert(row, e);
            return (e.count, fresh);
        }
        // Table full: if some entry is at or below the spillover count, replace
        // it (classic Misra-Gries with spillover); otherwise count the
        // activation in the spillover.
        if let Some(pos) = self.order.iter().position(|r| self.entries[r].count <= self.spillover) {
            let victim = self.order[pos];
            let victim_entry = self.entries.remove(&victim).expect("ordered rows are tracked");
            if victim_entry.refreshed != 0 {
                self.spilled_refreshed.insert(victim, victim_entry.refreshed);
            }
            let mut e = MgEntry { count: self.spillover + weight, refreshed: self.take_spilled_level(row) };
            let fresh = e.count >= threshold && Self::crossed(&mut e.refreshed, e.count / threshold);
            self.order[pos] = row;
            self.entries.insert(row, e);
            (e.count, fresh)
        } else {
            self.spillover += weight;
            if self.spillover < threshold {
                return (self.spillover, false);
            }
            let level = self.spillover / threshold;
            let fresh = Self::crossed(self.spilled_refreshed.entry(row).or_insert(0), level);
            (self.spillover, fresh)
        }
    }

    /// Takes `row`'s spilled refresh level, skipping the hash lookup when no
    /// level was ever spilled (no eviction has fired since the last reset).
    #[inline(always)]
    fn take_spilled_level(&mut self, row: usize) -> u64 {
        if self.spilled_refreshed.is_empty() {
            0
        } else {
            self.spilled_refreshed.remove(&row).unwrap_or(0)
        }
    }

    /// Advances `last` to `level` if it is new; returns whether it was.
    #[inline(always)]
    fn crossed(last: &mut u64, level: u64) -> bool {
        if level > *last {
            *last = level;
            true
        } else {
            false
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.spilled_refreshed.clear();
        self.spillover = 0;
    }
}

/// The Graphene mechanism: one Misra-Gries table per bank.
#[derive(Debug, Clone)]
pub struct Graphene {
    config: GrapheneConfig,
    geometry: DramGeometry,
    tables: Vec<MisraGriesTable>,
    next_reset: Cycle,
    stats: MitigationStats,
}

impl Graphene {
    /// Creates Graphene protecting one channel of `geometry`.
    pub fn new(config: GrapheneConfig, geometry: DramGeometry) -> Self {
        let banks = geometry.banks_per_channel();
        Graphene {
            next_reset: config.reset_period,
            config,
            geometry,
            tables: vec![MisraGriesTable::default(); banks],
            stats: MitigationStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &GrapheneConfig {
        &self.config
    }

    fn maybe_reset(&mut self, now: Cycle) {
        if now >= self.next_reset {
            for t in &mut self.tables {
                t.clear();
            }
            self.stats.periodic_resets += 1;
            while self.next_reset <= now {
                self.next_reset += self.config.reset_period;
            }
        }
    }
}

impl RowHammerMitigation for Graphene {
    crate::impl_mitigation_checkpoint!(Graphene);

    fn name(&self) -> &str {
        "Graphene"
    }

    fn quiescent_activations(&self) -> u64 {
        // A batch of total weight W grows any one count (tracked entry,
        // spillover, or spillover-based insert) by at most W, so no refresh
        // level can be crossed as long as W stays below every gap:
        // * a tracked row triggers at `(refreshed + 1) × threshold`;
        // * an untracked row triggers as soon as the spillover-seeded count
        //   reaches `threshold` (its spilled level may be 0).
        let threshold = self.config.prevention_threshold;
        let mut credit = u64::MAX;
        for table in &self.tables {
            credit = credit.min(threshold.saturating_sub(1).saturating_sub(table.spillover));
            for e in table.entries.values() {
                let bound = (e.refreshed + 1).saturating_mul(threshold);
                credit = credit.min(bound.saturating_sub(1).saturating_sub(e.count));
            }
            if credit == 0 {
                return 0;
            }
        }
        credit
    }

    fn on_activation(&mut self, addr: &DramAddr, now: Cycle, weight: u64) -> MitigationResponse {
        self.maybe_reset(now);
        self.stats.activations_observed += weight;
        let bank = addr.flat_bank(&self.geometry);
        let (_estimate, crossed) = self.tables[bank].update(
            addr.row,
            weight,
            self.config.entries_per_bank,
            self.config.prevention_threshold,
        );
        if crossed {
            self.stats.aggressors_identified += 1;
            let victims = addr.victim_rows(&self.geometry);
            self.stats.preventive_refreshes += victims.len() as u64;
            MitigationResponse::refresh(victims)
        } else {
            MitigationResponse::none()
        }
    }

    fn on_tick(&mut self, now: Cycle) {
        self.maybe_reset(now);
    }

    fn next_tick_deadline(&self) -> Cycle {
        self.next_reset
    }

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MitigationStats::default();
    }

    fn storage_bits(&self) -> u64 {
        self.config.storage_bits_per_bank() * self.geometry.banks_per_channel() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(nrh: u64) -> Graphene {
        let geometry = DramGeometry::paper_default();
        let timing = TimingParams::ddr4_2400();
        let config = GrapheneConfig::for_threshold(nrh, &timing, &geometry);
        Graphene::new(config, geometry)
    }

    fn addr(row: usize) -> DramAddr {
        DramAddr { channel: 0, rank: 0, bank_group: 0, bank: 0, row, column: 0 }
    }

    #[test]
    fn config_scales_entries_with_threshold() {
        let geometry = DramGeometry::paper_default();
        let timing = TimingParams::ddr4_2400();
        let c1k = GrapheneConfig::for_threshold(1000, &timing, &geometry);
        let c125 = GrapheneConfig::for_threshold(125, &timing, &geometry);
        assert!(c125.entries_per_bank > 6 * c1k.entries_per_bank);
        assert!(c125.storage_bits_per_bank() > 5 * c1k.storage_bits_per_bank());
    }

    #[test]
    fn hammered_row_triggers_refresh_at_threshold() {
        let mut g = setup(1000);
        let threshold = g.config().prevention_threshold;
        let mut refreshes = 0;
        for i in 0..threshold {
            let r = g.on_activation(&addr(100), i, 1);
            if !r.refresh_victims.is_empty() {
                refreshes += 1;
                assert_eq!(i + 1, threshold, "refresh must fire exactly at the threshold");
            }
        }
        assert_eq!(refreshes, 1);
    }

    #[test]
    fn repeated_hammering_triggers_repeated_refreshes() {
        let mut g = setup(1000);
        let threshold = g.config().prevention_threshold;
        let mut refreshes = 0;
        for i in 0..(4 * threshold) {
            if !g.on_activation(&addr(100), i, 1).refresh_victims.is_empty() {
                refreshes += 1;
            }
        }
        assert_eq!(refreshes, 4);
    }

    #[test]
    fn aggressor_never_reaches_nrh_without_refresh() {
        // Security property: a row activated NRH times must have been refreshed at
        // least once well before reaching NRH.
        let mut g = setup(500);
        let mut first_refresh_at = None;
        for i in 0..500u64 {
            if !g.on_activation(&addr(7), i, 1).refresh_victims.is_empty() && first_refresh_at.is_none() {
                first_refresh_at = Some(i + 1);
            }
        }
        let first = first_refresh_at.expect("row must be refreshed before NRH activations");
        assert!(first <= 500 / 2, "first refresh at {first} is too late");
    }

    #[test]
    fn distinct_rows_below_threshold_do_not_trigger() {
        let mut g = setup(1000);
        for row in 0..2000usize {
            let r = g.on_activation(&addr(row), row as u64, 1);
            assert!(r.is_nop(), "row {row} unexpectedly triggered a refresh");
        }
    }

    #[test]
    fn periodic_reset_clears_counts() {
        let mut g = setup(1000);
        let threshold = g.config().prevention_threshold;
        let period = g.config().reset_period;
        // Hammer just below the threshold, let the table reset, and hammer again:
        // no refresh should occur because the count never crosses the threshold
        // within one reset period.
        for i in 0..threshold - 1 {
            assert!(g.on_activation(&addr(3), i, 1).is_nop());
        }
        for i in 0..threshold - 1 {
            assert!(g.on_activation(&addr(3), period + i, 1).is_nop());
        }
        assert!(g.stats().periodic_resets >= 1);
    }

    #[test]
    fn storage_matches_per_bank_math() {
        let g = setup(1000);
        let per_bank = g.config().storage_bits_per_bank();
        assert_eq!(g.storage_bits(), per_bank * 32);
    }

    #[test]
    fn full_table_replaces_the_lowest_eligible_slot_deterministically() {
        let geometry = DramGeometry::paper_default();
        let config = GrapheneConfig {
            nrh: 100,
            prevention_threshold: 25,
            entries_per_bank: 2,
            reset_period: Cycle::MAX,
            tag_bits: geometry.row_bits(),
        };
        let mut a = Graphene::new(config.clone(), geometry.clone());
        let mut b = Graphene::new(config, geometry);
        // Fill the 2-entry table, grow the spillover past the weaker entry,
        // then insert new rows so the replacement scan runs repeatedly. Both
        // instances must agree on every response: victim choice is a dense
        // lowest-slot-first scan, not a hasher-ordered walk.
        for (i, row) in [(0u64, 1usize), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 1), (7, 3)]
            .into_iter()
            .chain((8..64).map(|i| (i, (i % 7 + 1) as usize)))
        {
            assert_eq!(a.on_activation(&addr(row), i, 1), b.on_activation(&addr(row), i, 1));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn eviction_preserves_refresh_levels_across_reinsertion() {
        let geometry = DramGeometry::paper_default();
        let config = GrapheneConfig {
            nrh: 100,
            prevention_threshold: 4,
            entries_per_bank: 1,
            reset_period: Cycle::MAX,
            tag_bits: geometry.row_bits(),
        };
        let mut g = Graphene::new(config, geometry);
        // Row 1 crosses the threshold once and is refreshed at level 1.
        for i in 0..4u64 {
            g.on_activation(&addr(1), i, 1);
        }
        assert_eq!(g.stats().aggressors_identified, 1);
        // Spillover-driven churn evicts row 1; on reinsertion its count restarts
        // from the spillover (already ≥ the threshold), but level 1 was spilled
        // with it, so no duplicate refresh fires until a *new* level is reached.
        for i in 4..9u64 {
            g.on_activation(&addr(2), i, 1);
        }
        let r = g.on_activation(&addr(1), 9, 1);
        assert!(r.is_nop(), "level-1 refresh must not repeat after eviction and reinsertion");
    }

    #[test]
    fn banks_are_tracked_independently() {
        let mut g = setup(1000);
        let threshold = g.config().prevention_threshold;
        let a = DramAddr { channel: 0, rank: 0, bank_group: 0, bank: 0, row: 9, column: 0 };
        let b = DramAddr { channel: 0, rank: 0, bank_group: 1, bank: 2, row: 9, column: 0 };
        for i in 0..threshold - 1 {
            assert!(g.on_activation(&a, i, 1).is_nop());
        }
        // The same row index in another bank has its own counter.
        assert!(g.on_activation(&b, threshold, 1).is_nop());
    }
}
