//! Graphene: Misra-Gries-based aggressor tracking (Park et al., MICRO 2020).

use crate::stats::MitigationStats;
use crate::traits::{MitigationResponse, RowHammerMitigation};
use comet_dram::{Cycle, DramAddr, DramGeometry, TimingParams};
use std::collections::HashMap;

/// Configuration of the Graphene tracker.
///
/// Graphene runs the Misra-Gries frequent-item algorithm per bank with
/// `entries_per_bank` tagged counters and a spillover counter. A row whose
/// counter reaches a multiple of `prevention_threshold` has its neighbours
/// preventively refreshed. The table is reset every `reset_period` cycles.
///
/// `for_threshold` sizes the table the way the Graphene paper does: with a
/// table reset period of `tREFW / reset_divisor`, at most
/// `W = max ACTs per bank per reset period` activations can occur, so
/// `W / prevention_threshold + 1` entries suffice to guarantee that any row
/// activated `prevention_threshold` times is present in the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrapheneConfig {
    /// RowHammer threshold the mechanism must defend against.
    pub nrh: u64,
    /// Counter value at which victims are preventively refreshed.
    pub prevention_threshold: u64,
    /// Misra-Gries entries per bank.
    pub entries_per_bank: usize,
    /// Tracker state is cleared every this many cycles.
    pub reset_period: Cycle,
    /// Row-tag width in bits (for storage accounting).
    pub tag_bits: u32,
}

impl GrapheneConfig {
    /// Sizes Graphene for `nrh` under `timing`, as described in the Graphene
    /// paper and used by the CoMeT paper's comparison (§6): reset period
    /// `tREFW/2`, prevention threshold `NRH/4`, and enough entries to cover the
    /// worst-case activation count of one bank in a reset period.
    pub fn for_threshold(nrh: u64, timing: &TimingParams, geometry: &DramGeometry) -> Self {
        let reset_divisor = 2;
        let reset_period = timing.t_refw / reset_divisor;
        let prevention_threshold = (nrh / 4).max(1);
        let max_acts = reset_period / timing.t_rc;
        let entries_per_bank = (max_acts / prevention_threshold + 1) as usize;
        GrapheneConfig {
            nrh,
            prevention_threshold,
            entries_per_bank,
            reset_period,
            tag_bits: geometry.row_bits(),
        }
    }

    /// Counter width needed to count up to the prevention threshold.
    pub fn counter_bits(&self) -> u32 {
        64 - self.prevention_threshold.leading_zeros()
    }

    /// Storage in bits for one bank's table (tags + counters + spillover counter).
    pub fn storage_bits_per_bank(&self) -> u64 {
        let entry_bits = (self.tag_bits + self.counter_bits()) as u64;
        self.entries_per_bank as u64 * entry_bits + self.counter_bits() as u64
    }
}

/// Per-bank Misra-Gries table.
#[derive(Debug, Clone, Default)]
struct MisraGriesTable {
    /// Row → activation-count estimate.
    counters: HashMap<usize, u64>,
    /// Spillover counter: lower bound for rows not in the table.
    spillover: u64,
}

impl MisraGriesTable {
    /// Performs one Misra-Gries update and returns the row's updated estimate.
    fn update(&mut self, row: usize, weight: u64, capacity: usize) -> u64 {
        if let Some(c) = self.counters.get_mut(&row) {
            *c += weight;
            return *c;
        }
        if self.counters.len() < capacity {
            let value = self.spillover + weight;
            self.counters.insert(row, value);
            return value;
        }
        // Table full: if some entry equals the spillover count, replace it
        // (classic Misra-Gries with spillover); otherwise increment spillover.
        if let Some((&victim, _)) = self.counters.iter().find(|(_, &c)| c <= self.spillover) {
            self.counters.remove(&victim);
            let value = self.spillover + weight;
            self.counters.insert(row, value);
            value
        } else {
            self.spillover += weight;
            self.spillover
        }
    }

    fn clear(&mut self) {
        self.counters.clear();
        self.spillover = 0;
    }
}

/// The Graphene mechanism: one Misra-Gries table per bank.
#[derive(Debug, Clone)]
pub struct Graphene {
    config: GrapheneConfig,
    geometry: DramGeometry,
    tables: Vec<MisraGriesTable>,
    /// Last multiple of the prevention threshold at which each (bank, row) was refreshed.
    refreshed_at: Vec<HashMap<usize, u64>>,
    next_reset: Cycle,
    stats: MitigationStats,
}

impl Graphene {
    /// Creates Graphene protecting one channel of `geometry`.
    pub fn new(config: GrapheneConfig, geometry: DramGeometry) -> Self {
        let banks = geometry.banks_per_channel();
        Graphene {
            next_reset: config.reset_period,
            config,
            geometry,
            tables: vec![MisraGriesTable::default(); banks],
            refreshed_at: vec![HashMap::new(); banks],
            stats: MitigationStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &GrapheneConfig {
        &self.config
    }

    fn maybe_reset(&mut self, now: Cycle) {
        if now >= self.next_reset {
            for t in &mut self.tables {
                t.clear();
            }
            for m in &mut self.refreshed_at {
                m.clear();
            }
            self.stats.periodic_resets += 1;
            while self.next_reset <= now {
                self.next_reset += self.config.reset_period;
            }
        }
    }
}

impl RowHammerMitigation for Graphene {
    fn name(&self) -> &str {
        "Graphene"
    }

    fn on_activation(&mut self, addr: &DramAddr, now: Cycle, weight: u64) -> MitigationResponse {
        self.maybe_reset(now);
        self.stats.activations_observed += weight;
        let bank = addr.flat_bank(&self.geometry);
        let estimate = self.tables[bank].update(addr.row, weight, self.config.entries_per_bank);
        let threshold = self.config.prevention_threshold;
        let level = estimate / threshold;
        if level == 0 {
            return MitigationResponse::none();
        }
        let last = self.refreshed_at[bank].entry(addr.row).or_insert(0);
        if level > *last {
            *last = level;
            self.stats.aggressors_identified += 1;
            let victims = addr.victim_rows(&self.geometry);
            self.stats.preventive_refreshes += victims.len() as u64;
            MitigationResponse::refresh(victims)
        } else {
            MitigationResponse::none()
        }
    }

    fn on_tick(&mut self, now: Cycle) {
        self.maybe_reset(now);
    }

    fn next_tick_deadline(&self) -> Cycle {
        self.next_reset
    }

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MitigationStats::default();
    }

    fn storage_bits(&self) -> u64 {
        self.config.storage_bits_per_bank() * self.geometry.banks_per_channel() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(nrh: u64) -> Graphene {
        let geometry = DramGeometry::paper_default();
        let timing = TimingParams::ddr4_2400();
        let config = GrapheneConfig::for_threshold(nrh, &timing, &geometry);
        Graphene::new(config, geometry)
    }

    fn addr(row: usize) -> DramAddr {
        DramAddr { channel: 0, rank: 0, bank_group: 0, bank: 0, row, column: 0 }
    }

    #[test]
    fn config_scales_entries_with_threshold() {
        let geometry = DramGeometry::paper_default();
        let timing = TimingParams::ddr4_2400();
        let c1k = GrapheneConfig::for_threshold(1000, &timing, &geometry);
        let c125 = GrapheneConfig::for_threshold(125, &timing, &geometry);
        assert!(c125.entries_per_bank > 6 * c1k.entries_per_bank);
        assert!(c125.storage_bits_per_bank() > 5 * c1k.storage_bits_per_bank());
    }

    #[test]
    fn hammered_row_triggers_refresh_at_threshold() {
        let mut g = setup(1000);
        let threshold = g.config().prevention_threshold;
        let mut refreshes = 0;
        for i in 0..threshold {
            let r = g.on_activation(&addr(100), i, 1);
            if !r.refresh_victims.is_empty() {
                refreshes += 1;
                assert_eq!(i + 1, threshold, "refresh must fire exactly at the threshold");
            }
        }
        assert_eq!(refreshes, 1);
    }

    #[test]
    fn repeated_hammering_triggers_repeated_refreshes() {
        let mut g = setup(1000);
        let threshold = g.config().prevention_threshold;
        let mut refreshes = 0;
        for i in 0..(4 * threshold) {
            if !g.on_activation(&addr(100), i, 1).refresh_victims.is_empty() {
                refreshes += 1;
            }
        }
        assert_eq!(refreshes, 4);
    }

    #[test]
    fn aggressor_never_reaches_nrh_without_refresh() {
        // Security property: a row activated NRH times must have been refreshed at
        // least once well before reaching NRH.
        let mut g = setup(500);
        let mut first_refresh_at = None;
        for i in 0..500u64 {
            if !g.on_activation(&addr(7), i, 1).refresh_victims.is_empty() && first_refresh_at.is_none() {
                first_refresh_at = Some(i + 1);
            }
        }
        let first = first_refresh_at.expect("row must be refreshed before NRH activations");
        assert!(first <= 500 / 2, "first refresh at {first} is too late");
    }

    #[test]
    fn distinct_rows_below_threshold_do_not_trigger() {
        let mut g = setup(1000);
        for row in 0..2000usize {
            let r = g.on_activation(&addr(row), row as u64, 1);
            assert!(r.is_nop(), "row {row} unexpectedly triggered a refresh");
        }
    }

    #[test]
    fn periodic_reset_clears_counts() {
        let mut g = setup(1000);
        let threshold = g.config().prevention_threshold;
        let period = g.config().reset_period;
        // Hammer just below the threshold, let the table reset, and hammer again:
        // no refresh should occur because the count never crosses the threshold
        // within one reset period.
        for i in 0..threshold - 1 {
            assert!(g.on_activation(&addr(3), i, 1).is_nop());
        }
        for i in 0..threshold - 1 {
            assert!(g.on_activation(&addr(3), period + i, 1).is_nop());
        }
        assert!(g.stats().periodic_resets >= 1);
    }

    #[test]
    fn storage_matches_per_bank_math() {
        let g = setup(1000);
        let per_bank = g.config().storage_bits_per_bank();
        assert_eq!(g.storage_bits(), per_bank * 32);
    }

    #[test]
    fn banks_are_tracked_independently() {
        let mut g = setup(1000);
        let threshold = g.config().prevention_threshold;
        let a = DramAddr { channel: 0, rank: 0, bank_group: 0, bank: 0, row: 9, column: 0 };
        let b = DramAddr { channel: 0, rank: 0, bank_group: 1, bank: 2, row: 9, column: 0 };
        for i in 0..threshold - 1 {
            assert!(g.on_activation(&a, i, 1).is_nop());
        }
        // The same row index in another bank has its own counter.
        assert!(g.on_activation(&b, threshold, 1).is_nop());
    }
}
