//! # comet-mitigations
//!
//! RowHammer mitigation mechanisms for the CoMeT reproduction.
//!
//! This crate defines the [`RowHammerMitigation`] trait through which the
//! memory controller in `comet-sim` notifies a mechanism of every row
//! activation and receives the preventive actions it must carry out
//! (preventive victim refreshes, rank-level refreshes, counter traffic to
//! DRAM, or activation throttling).
//!
//! It also re-implements the state-of-the-art baselines the CoMeT paper
//! compares against (§6 "Comparison Points"):
//!
//! * [`Graphene`] — Misra-Gries frequent-item tracking with tagged CAM counters,
//! * [`Hydra`] — hybrid SRAM group counters + per-row counters stored in DRAM,
//! * [`Para`] — stateless probabilistic adjacent-row refresh,
//! * [`Rega`] — DRAM-side refresh-generating activations (modeled as an
//!   activation latency penalty),
//! * [`BlockHammer`] — counting-Bloom-filter blacklisting with throttling,
//! * [`PerRowCounters`] — the idealized one-counter-per-row tracker, and
//! * [`NoMitigation`] — the unprotected baseline.
//!
//! CoMeT itself lives in the `comet-core` crate and implements the same trait.
//!
//! ## Example
//!
//! ```rust
//! use comet_mitigations::{Para, RowHammerMitigation};
//! use comet_dram::{DramAddr, DramGeometry};
//!
//! let geometry = DramGeometry::paper_default();
//! let mut para = Para::new(1000, 0xC0FFEE, geometry.clone());
//! let addr = DramAddr { channel: 0, rank: 0, bank_group: 0, bank: 0, row: 77, column: 0 };
//! let response = para.on_activation(&addr, 0, 1);
//! // PARA either does nothing or refreshes the neighbours of row 77.
//! assert!(response.refresh_victims.iter().all(|v| v.row == 76 || v.row == 78));
//! ```

pub mod blockhammer;
pub mod graphene;
mod hashers;
pub mod hydra;
pub mod none;
pub mod para;
pub mod perrow;
pub mod rega;
pub mod stats;
pub mod traits;

pub use blockhammer::{BlockHammer, BlockHammerConfig, CountingBloomFilter};
pub use graphene::{Graphene, GrapheneConfig};
pub use hydra::{Hydra, HydraConfig};
pub use none::NoMitigation;
pub use para::Para;
pub use perrow::PerRowCounters;
pub use rega::Rega;
pub use stats::MitigationStats;
pub use traits::{FnFactory, MitigationFactory, MitigationResponse, RowHammerMitigation};
