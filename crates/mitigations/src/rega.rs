//! REGA: Refresh-Generating Activations (Marazzi et al., S&P 2023), modeled as
//! an activation latency penalty.

use crate::stats::MitigationStats;
use crate::traits::{MitigationResponse, RowHammerMitigation};
use comet_dram::{Cycle, DramAddr, TimingParams};

/// REGA modifies the DRAM chip so that each row activation concurrently
/// refreshes one or more potential victim rows using spare sense amplifiers.
///
/// From the memory controller's point of view the only observable effect is a
/// longer row cycle: to refresh `v` rows per activation the device needs the
/// row to stay open longer, so `tRC`/`tRAS` grow with `v`, and `v` itself grows
/// as the RowHammer threshold shrinks. Following the CoMeT paper's methodology
/// (§6, "we modify tRC as described in [127]"), this model derives a per-ACT
/// latency penalty from `NRH`:
///
/// * `NRH ≥ 1000` — the protection fits in the activation's slack: no penalty,
/// * `NRH = 500` — one extra victim refresh per ACT,
/// * `NRH = 250` — two extra victim refreshes per ACT,
/// * `NRH ≤ 125` — four extra victim refreshes per ACT,
///
/// each victim refresh costing roughly 3.5 ns of additional bank busy time.
/// REGA keeps no controller-side state (its cost is a DRAM-area cost of ~2%).
#[derive(Debug, Clone)]
pub struct Rega {
    nrh: u64,
    penalty_cycles: Cycle,
    stats: MitigationStats,
}

impl Rega {
    /// Nanoseconds of extra bank busy time charged per victim refresh.
    const NS_PER_VICTIM_REFRESH: f64 = 3.5;

    /// Creates REGA for RowHammer threshold `nrh` under `timing`.
    pub fn new(nrh: u64, timing: &TimingParams) -> Self {
        let victims = Self::victims_per_activation(nrh);
        let penalty_ns = victims as f64 * Self::NS_PER_VICTIM_REFRESH;
        Rega { nrh, penalty_cycles: timing.ns_to_cycles(penalty_ns), stats: MitigationStats::default() }
    }

    /// Number of rows REGA must refresh alongside each activation to stay secure
    /// at threshold `nrh`.
    pub fn victims_per_activation(nrh: u64) -> u64 {
        match nrh {
            n if n >= 1000 => 0,
            n if n >= 500 => 1,
            n if n >= 250 => 2,
            _ => 4,
        }
    }

    /// The configured RowHammer threshold.
    pub fn nrh(&self) -> u64 {
        self.nrh
    }

    /// DRAM chip area overhead fraction reported by the REGA paper.
    pub fn dram_area_overhead_fraction() -> f64 {
        0.0206
    }
}

impl RowHammerMitigation for Rega {
    crate::impl_mitigation_checkpoint!(Rega);

    fn name(&self) -> &str {
        "REGA"
    }

    fn quiescent_activations(&self) -> u64 {
        // The per-ACT latency penalty is reported through `act_latency_penalty`,
        // not the response, so every response is a nop regardless of state.
        u64::MAX
    }

    fn on_activation(&mut self, _addr: &DramAddr, _now: Cycle, weight: u64) -> MitigationResponse {
        self.stats.activations_observed += weight;
        // The in-DRAM refreshes count as preventive refreshes for energy accounting.
        self.stats.preventive_refreshes += Self::victims_per_activation(self.nrh) * weight;
        MitigationResponse::none()
    }

    fn act_latency_penalty(&self) -> Cycle {
        self.penalty_cycles
    }

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MitigationStats::default();
    }

    fn storage_bits(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_grows_as_threshold_shrinks() {
        let t = TimingParams::ddr4_2400();
        let p1k = Rega::new(1000, &t).act_latency_penalty();
        let p500 = Rega::new(500, &t).act_latency_penalty();
        let p125 = Rega::new(125, &t).act_latency_penalty();
        assert_eq!(p1k, 0);
        assert!(p500 > 0);
        assert!(p125 > p500);
    }

    #[test]
    fn no_controller_actions_requested() {
        let t = TimingParams::ddr4_2400();
        let mut r = Rega::new(125, &t);
        let addr = DramAddr { channel: 0, rank: 0, bank_group: 0, bank: 0, row: 1, column: 0 };
        for i in 0..1000 {
            assert!(r.on_activation(&addr, i, 1).is_nop());
        }
        assert_eq!(r.storage_bits(), 0);
    }

    #[test]
    fn in_dram_refreshes_are_accounted() {
        let t = TimingParams::ddr4_2400();
        let mut r = Rega::new(250, &t);
        let addr = DramAddr { channel: 0, rank: 0, bank_group: 0, bank: 0, row: 1, column: 0 };
        for i in 0..100 {
            r.on_activation(&addr, i, 1);
        }
        assert_eq!(r.stats().preventive_refreshes, 200);
    }

    #[test]
    fn dram_area_overhead_is_about_two_percent() {
        assert!((Rega::dram_area_overhead_fraction() - 0.02).abs() < 0.005);
    }
}
