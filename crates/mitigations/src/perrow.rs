//! Idealized per-DRAM-row activation counters (the "straightforward" tracker of §3.2).

use crate::stats::MitigationStats;
use crate::traits::{MitigationResponse, RowHammerMitigation};
use comet_dram::{Cycle, DramAddr, DramGeometry, TimingParams};
use std::collections::HashMap;

/// One dedicated activation counter per DRAM row.
///
/// This tracker is exact — it never over- or under-estimates — but requires a
/// counter for every row in the system (20 MiB for a modern DDR5 channel, per
/// the paper's introduction), which is why real mechanisms approximate it.
/// It serves as the ground-truth reference in tests and ablation studies.
#[derive(Debug, Clone)]
pub struct PerRowCounters {
    nrh: u64,
    prevention_threshold: u64,
    reset_period: Cycle,
    next_reset: Cycle,
    geometry: DramGeometry,
    counters: HashMap<(usize, usize), u64>,
    /// Upper bound on the largest live counter value (stale-high after a
    /// trigger zeroes a counter, reset with the window). Only used to answer
    /// [`RowHammerMitigation::quiescent_activations`]; never affects decisions.
    max_count: u64,
    stats: MitigationStats,
}

impl PerRowCounters {
    /// Creates the ideal tracker with prevention threshold `nrh / 2` and a
    /// reset period of one refresh window.
    pub fn new(nrh: u64, timing: &TimingParams, geometry: DramGeometry) -> Self {
        PerRowCounters {
            nrh,
            prevention_threshold: (nrh / 2).max(1),
            reset_period: timing.t_refw,
            next_reset: timing.t_refw,
            geometry,
            counters: HashMap::new(),
            max_count: 0,
            stats: MitigationStats::default(),
        }
    }

    /// Exact activation count recorded for `addr` in the current window.
    pub fn count(&self, addr: &DramAddr) -> u64 {
        let bank = addr.flat_bank(&self.geometry);
        *self.counters.get(&(bank, addr.row)).unwrap_or(&0)
    }

    /// The configured RowHammer threshold.
    pub fn nrh(&self) -> u64 {
        self.nrh
    }

    fn maybe_reset(&mut self, now: Cycle) {
        if now >= self.next_reset {
            self.counters.clear();
            self.max_count = 0;
            self.stats.periodic_resets += 1;
            while self.next_reset <= now {
                self.next_reset += self.reset_period;
            }
        }
    }
}

impl RowHammerMitigation for PerRowCounters {
    crate::impl_mitigation_checkpoint!(PerRowCounters);

    fn name(&self) -> &str {
        "PerRow"
    }

    fn on_activation(&mut self, addr: &DramAddr, now: Cycle, weight: u64) -> MitigationResponse {
        self.maybe_reset(now);
        self.stats.activations_observed += weight;
        let bank = addr.flat_bank(&self.geometry);
        let counter = self.counters.entry((bank, addr.row)).or_insert(0);
        *counter += weight;
        if *counter >= self.prevention_threshold {
            *counter = 0;
            self.stats.aggressors_identified += 1;
            let victims = addr.victim_rows(&self.geometry);
            self.stats.preventive_refreshes += victims.len() as u64;
            MitigationResponse::refresh(victims)
        } else {
            self.max_count = self.max_count.max(*counter);
            MitigationResponse::none()
        }
    }

    fn quiescent_activations(&self) -> u64 {
        // Even if every deferred activation lands on the hottest row, its
        // counter stays below the prevention threshold as long as the batch
        // weight fits in the remaining headroom.
        self.prevention_threshold.saturating_sub(1).saturating_sub(self.max_count)
    }

    fn on_tick(&mut self, now: Cycle) {
        self.maybe_reset(now);
    }

    fn next_tick_deadline(&self) -> Cycle {
        self.next_reset
    }

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MitigationStats::default();
    }

    fn storage_bits(&self) -> u64 {
        let counter_bits = (64 - self.prevention_threshold.leading_zeros()) as u64;
        self.geometry.banks_per_channel() as u64 * self.geometry.rows_per_bank as u64 * counter_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(nrh: u64) -> PerRowCounters {
        PerRowCounters::new(nrh, &TimingParams::ddr4_2400(), DramGeometry::paper_default())
    }

    fn addr(row: usize) -> DramAddr {
        DramAddr { channel: 0, rank: 0, bank_group: 0, bank: 0, row, column: 0 }
    }

    #[test]
    fn exact_counting() {
        let mut m = setup(1000);
        for i in 0..100 {
            m.on_activation(&addr(5), i, 1);
        }
        assert_eq!(m.count(&addr(5)), 100);
        assert_eq!(m.count(&addr(6)), 0);
    }

    #[test]
    fn refresh_exactly_at_half_threshold() {
        let mut m = setup(1000);
        let mut refresh_points = Vec::new();
        for i in 0..1000u64 {
            if !m.on_activation(&addr(9), i, 1).refresh_victims.is_empty() {
                refresh_points.push(i + 1);
            }
        }
        assert_eq!(refresh_points, vec![500, 1000]);
    }

    #[test]
    fn storage_is_enormous() {
        let m = setup(1000);
        // 32 banks × 128 K rows × ~9 bits ≈ 4.7 MiB — per-row counters do not scale.
        assert!(m.storage_bits() > 30_000_000);
    }

    #[test]
    fn window_reset_clears_counts() {
        let mut m = setup(1000);
        let period = TimingParams::ddr4_2400().t_refw;
        for i in 0..100 {
            m.on_activation(&addr(5), i, 1);
        }
        m.on_tick(period);
        assert_eq!(m.count(&addr(5)), 0);
    }
}
