//! BlockHammer: counting-Bloom-filter blacklisting with activation throttling
//! (Yağlıkçı et al., HPCA 2021).

use crate::hashers::IntMap;
use crate::stats::MitigationStats;
use crate::traits::{MitigationResponse, RowHammerMitigation};
use comet_dram::{Cycle, DramAddr, DramGeometry, TimingParams};
use serde::{Deserialize, Serialize};

/// A counting Bloom filter: `hashes` hash functions index a single shared
/// array of `counters` saturating counters.
///
/// In contrast to CoMeT's Counter Table — which partitions the counter array
/// into one row per hash function — BlockHammer's hash functions can map a row
/// to *any* counter in the shared array, which increases the collision (false
/// positive) rate for the same storage budget. Figure 17 of the CoMeT paper
/// compares exactly these two organizations; this type is that comparison's
/// BlockHammer side.
/// Counters are 32 bits wide: hardware CBF counters are a handful of bits
/// (sized for the blacklist threshold), and halving the modeled arrays keeps
/// a whole channel's filters cache-resident on the simulation hot path.
/// Counts saturate at `u32::MAX`, unreachable between epoch clears for any
/// physically meaningful activation stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountingBloomFilter {
    counters: Vec<u32>,
    hashes: usize,
    seed: u64,
}

impl CountingBloomFilter {
    /// Creates a filter with `counters` counters shared by `hashes` hash functions.
    pub fn new(counters: usize, hashes: usize, seed: u64) -> Self {
        assert!(counters.is_power_of_two(), "counter count must be a power of two");
        assert!(hashes >= 1, "at least one hash function is required");
        CountingBloomFilter { counters: vec![0; counters], hashes, seed }
    }

    fn index(&self, item: u64, hash: usize) -> usize {
        // A small xorshift-multiply hash family; any counter can be selected by any hash.
        let mut x =
            item.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(hash as u64 + 1)).wrapping_add(self.seed);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 29;
        (x as usize) & (self.counters.len() - 1)
    }

    /// Inserts `item`, incrementing every counter of its group.
    ///
    /// This is the plain counting-Bloom-filter update BlockHammer uses. Unlike
    /// CoMeT's Count-Min Sketch with conservative updates, *all* counters grow
    /// on every insertion, which makes the filter's overestimates (and thus its
    /// false positive rate) larger under collisions — the algorithmic difference
    /// Figure 17 of the CoMeT paper highlights.
    pub fn insert(&mut self, item: u64, weight: u64) {
        let weight = weight.min(u32::MAX as u64) as u32;
        for h in 0..self.hashes {
            let i = self.index(item, h);
            self.counters[i] = self.counters[i].saturating_add(weight);
        }
    }

    /// Estimated count for `item` (never an underestimate).
    pub fn estimate(&self, item: u64) -> u64 {
        (0..self.hashes).map(|h| self.counters[self.index(item, h)] as u64).min().unwrap_or(0)
    }

    /// Inserts `item` and returns its updated estimate, computing each hash
    /// index once instead of once for the insert and again for the estimate.
    ///
    /// Two passes over an inline index buffer: unlike CoMeT's sketch, every
    /// hash function selects from the *same* shared counter array, so two
    /// hashes of one item may alias onto one counter — the estimate must be
    /// read after all increments have landed, never captured mid-update.
    pub fn insert_and_estimate(&mut self, item: u64, weight: u64) -> u64 {
        const MAX_INLINE: usize = 8;
        if self.hashes > MAX_INLINE {
            self.insert(item, weight);
            return self.estimate(item);
        }
        let weight = weight.min(u32::MAX as u64) as u32;
        let mut indices = [0usize; MAX_INLINE];
        for (h, slot) in indices.iter_mut().enumerate().take(self.hashes) {
            let i = self.index(item, h);
            self.counters[i] = self.counters[i].saturating_add(weight);
            *slot = i;
        }
        indices[..self.hashes].iter().map(|&i| self.counters[i] as u64).min().unwrap_or(0)
    }

    /// Clears all counters.
    pub fn clear(&mut self) {
        self.counters.iter_mut().for_each(|c| *c = 0);
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the filter has zero counters (never true for a constructed filter).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Number of hash functions.
    pub fn hash_count(&self) -> usize {
        self.hashes
    }
}

/// Configuration of the BlockHammer mechanism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHammerConfig {
    /// RowHammer threshold to defend against.
    pub nrh: u64,
    /// Counters per counting Bloom filter (per bank).
    pub cbf_counters: usize,
    /// Hash functions per filter.
    pub cbf_hashes: usize,
    /// Estimated count at which a row is blacklisted.
    pub blacklist_threshold: u64,
    /// Epoch after which the active and shadow filters swap and the old one clears.
    pub epoch: Cycle,
    /// Minimum spacing enforced between activations of a blacklisted row.
    pub throttle_interval: Cycle,
}

impl BlockHammerConfig {
    /// BlockHammer sized for `nrh` following its paper: dual 1 Ki-counter CBFs with
    /// 4 hash functions per bank, blacklist threshold at half the per-epoch budget,
    /// epoch = half a refresh window, and a throttle that caps a blacklisted row to
    /// `nrh` activations per refresh window.
    pub fn for_threshold(nrh: u64, timing: &TimingParams) -> Self {
        BlockHammerConfig {
            nrh,
            cbf_counters: 1024,
            cbf_hashes: 4,
            blacklist_threshold: (nrh / 2).max(1),
            epoch: timing.t_refw / 2,
            throttle_interval: timing.t_refw / nrh.max(1),
        }
    }

    /// Storage bits per bank (two filters).
    pub fn storage_bits_per_bank(&self) -> u64 {
        let counter_bits = (64 - self.blacklist_threshold.leading_zeros()) as u64;
        2 * self.cbf_counters as u64 * counter_bits
    }
}

/// The BlockHammer mechanism protecting one channel.
#[derive(Debug, Clone)]
pub struct BlockHammer {
    config: BlockHammerConfig,
    geometry: DramGeometry,
    /// Two time-interleaved filters per bank: `filters[bank] = [active, shadow]`.
    filters: Vec<[CountingBloomFilter; 2]>,
    /// Which filter of the pair is currently active per bank.
    active: usize,
    next_epoch: Cycle,
    /// Last permitted activation time per blacklisted row, keyed by the
    /// packed `(bank << 32) | row` pair (one u64 through the hasher instead
    /// of a two-usize tuple on every blacklisted activation).
    last_allowed: IntMap<u64, Cycle>,
    stats: MitigationStats,
}

impl BlockHammer {
    /// Creates BlockHammer for one channel of `geometry`.
    pub fn new(config: BlockHammerConfig, geometry: DramGeometry, seed: u64) -> Self {
        let banks = geometry.banks_per_channel();
        let filters = (0..banks)
            .map(|b| {
                [
                    CountingBloomFilter::new(config.cbf_counters, config.cbf_hashes, seed ^ (b as u64)),
                    CountingBloomFilter::new(
                        config.cbf_counters,
                        config.cbf_hashes,
                        seed ^ (b as u64) ^ 0xDEAD,
                    ),
                ]
            })
            .collect();
        BlockHammer {
            next_epoch: config.epoch,
            config,
            geometry,
            filters,
            active: 0,
            last_allowed: IntMap::default(),
            stats: MitigationStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &BlockHammerConfig {
        &self.config
    }

    fn maybe_rotate(&mut self, now: Cycle) {
        if now >= self.next_epoch {
            // The previously active filter becomes the shadow and is cleared.
            let old = self.active;
            self.active ^= 1;
            for pair in &mut self.filters {
                pair[old].clear();
            }
            self.last_allowed.clear();
            self.stats.periodic_resets += 1;
            while self.next_epoch <= now {
                self.next_epoch += self.config.epoch;
            }
        }
    }
}

impl RowHammerMitigation for BlockHammer {
    crate::impl_mitigation_checkpoint!(BlockHammer);

    fn name(&self) -> &str {
        "BlockHammer"
    }

    fn quiescent_activations(&self) -> u64 {
        // Any row's estimate is bounded by the largest counter in its bank's
        // filter pair, and a batch of total weight W grows every counter by
        // at most W (inserts add the weight to all hashed counters, so the
        // per-row min can climb by the full batch weight under aliasing).
        // While max counter + W stays below the blacklist threshold every
        // activation returns before the throttling path — a guaranteed nop.
        let mut max_counter = 0u32;
        for pair in &self.filters {
            for filter in pair {
                for &c in &filter.counters {
                    max_counter = max_counter.max(c);
                }
            }
        }
        self.config.blacklist_threshold.saturating_sub(1).saturating_sub(max_counter as u64)
    }

    fn on_activation(&mut self, addr: &DramAddr, now: Cycle, weight: u64) -> MitigationResponse {
        self.maybe_rotate(now);
        self.stats.activations_observed += weight;
        let bank = addr.flat_bank(&self.geometry);
        let row = addr.row as u64;
        let pair = &mut self.filters[bank];
        // The row's exposure is the maximum estimate across both
        // time-interleaved filters; the active filter's estimate comes out of
        // the fused insert, so only the shadow filter needs a separate probe.
        let inserted = pair[self.active].insert_and_estimate(row, weight);
        let estimate = inserted.max(pair[self.active ^ 1].estimate(row));
        if estimate < self.config.blacklist_threshold {
            return MitigationResponse::none();
        }
        // Blacklisted: enforce a minimum spacing between this row's
        // activations. One map probe reads the old deadline and writes the
        // next one in place.
        let key = ((bank as u64) << 32) | row;
        let slot = self.last_allowed.entry(key).or_insert(0);
        let allowed_at = *slot;
        *slot = now.max(allowed_at) + self.config.throttle_interval;
        if allowed_at > now {
            let delay = allowed_at - now;
            self.stats.throttled_activations += 1;
            self.stats.throttle_cycles += delay;
            MitigationResponse { throttle_cycles: delay, ..Default::default() }
        } else {
            MitigationResponse::none()
        }
    }

    fn on_tick(&mut self, now: Cycle) {
        self.maybe_rotate(now);
    }

    fn next_tick_deadline(&self) -> Cycle {
        self.next_epoch
    }

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MitigationStats::default();
    }

    fn storage_bits(&self) -> u64 {
        self.config.storage_bits_per_bank() * self.geometry.banks_per_channel() as u64
    }

    fn telemetry_gauges(&self) -> Vec<(&'static str, f64)> {
        // Blacklist size is the live count of rows currently rate-limited;
        // filter load is the mean insert count per active CBF, a proxy for
        // how close the epoch's filters are to alias-driven false positives.
        let banks = self.filters.len().max(1) as f64;
        let filter_load: f64 =
            self.filters.iter().map(|pair| pair[self.active].len() as f64).sum::<f64>() / banks;
        vec![("blacklisted_rows", self.last_allowed.len() as f64), ("cbf_filter_load", filter_load)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(nrh: u64) -> BlockHammer {
        let geometry = DramGeometry::paper_default();
        let timing = TimingParams::ddr4_2400();
        BlockHammer::new(BlockHammerConfig::for_threshold(nrh, &timing), geometry, 1234)
    }

    fn addr(row: usize) -> DramAddr {
        DramAddr { channel: 0, rank: 0, bank_group: 0, bank: 0, row, column: 0 }
    }

    #[test]
    fn cbf_never_underestimates() {
        let mut cbf = CountingBloomFilter::new(256, 4, 7);
        let mut truth: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for i in 0..5000u64 {
            let item = (i * 37) % 600;
            cbf.insert(item, 1);
            *truth.entry(item).or_insert(0) += 1;
        }
        for (item, count) in truth {
            assert!(cbf.estimate(item) >= count, "underestimate for {item}");
        }
    }

    #[test]
    fn cbf_estimates_exact_without_collisions() {
        let mut cbf = CountingBloomFilter::new(4096, 4, 7);
        for _ in 0..10 {
            cbf.insert(42, 1);
        }
        // A very sparse filter should report (close to) the exact count.
        assert_eq!(cbf.estimate(42), 10);
    }

    #[test]
    fn fused_insert_matches_insert_then_estimate_under_aliasing() {
        // A 2-counter filter with 4 hash functions forces hash aliasing on
        // every insert, the case where a mid-update estimate would be wrong.
        for (counters, hashes) in [(2usize, 4usize), (256, 4), (64, 1)] {
            let mut fused = CountingBloomFilter::new(counters, hashes, 11);
            let mut split = CountingBloomFilter::new(counters, hashes, 11);
            for i in 0..3000u64 {
                let item = (i * 37) % 97;
                let got = fused.insert_and_estimate(item, 1 + i % 3);
                split.insert(item, 1 + i % 3);
                assert_eq!(got, split.estimate(item), "item {item} in {counters}x{hashes}");
            }
        }
    }

    #[test]
    fn hammered_row_gets_throttled() {
        let mut bh = setup(500);
        let mut throttled = false;
        for i in 0..2_000u64 {
            let r = bh.on_activation(&addr(13), i * 30, 1);
            if r.throttle_cycles > 0 {
                throttled = true;
                break;
            }
        }
        assert!(throttled, "a heavily hammered row must eventually be throttled");
    }

    #[test]
    fn benign_rows_are_not_throttled() {
        let mut bh = setup(1000);
        for i in 0..10_000u64 {
            // Many distinct rows, a handful of activations each.
            let r = bh.on_activation(&addr((i % 5000) as usize), i * 30, 1);
            assert_eq!(r.throttle_cycles, 0, "benign access pattern must not be throttled");
        }
    }

    #[test]
    fn epoch_rotation_clears_old_state() {
        let mut bh = setup(500);
        let epoch = bh.config().epoch;
        for i in 0..300u64 {
            bh.on_activation(&addr(13), i, 1);
        }
        // After two epochs both filters have been cleared at least once.
        bh.on_tick(epoch + 1);
        bh.on_tick(2 * epoch + 1);
        let r = bh.on_activation(&addr(13), 2 * epoch + 10, 1);
        assert_eq!(r.throttle_cycles, 0);
        assert!(bh.stats().periodic_resets >= 2);
    }

    #[test]
    fn storage_accounting_is_nonzero_and_modest() {
        let bh = setup(125);
        let bits = bh.storage_bits();
        assert!(bits > 0);
        // Two 1K-counter filters with ~6-bit counters across 32 banks ≈ 48 KiB.
        assert!(bits < 2 * 1024 * 1024 * 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_counter_count_is_rejected() {
        let _ = CountingBloomFilter::new(1000, 4, 0);
    }
}
