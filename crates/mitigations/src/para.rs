//! PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).

use crate::stats::MitigationStats;
use crate::traits::{MitigationResponse, RowHammerMitigation};
use comet_dram::{Cycle, DramAddr, DramGeometry};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// PARA refreshes the neighbours of an activated row with a small probability.
///
/// The probability is tuned, as in the CoMeT paper's methodology (§6), for a
/// target failure probability of 10⁻¹⁵ within one refresh window: the chance
/// that a row hammered `NRH` times never triggers a neighbour refresh is
/// `(1 - p)^NRH ≤ 10⁻¹⁵`, i.e. `p = 1 - 10^(-15/NRH)`.
///
/// PARA keeps no state, so its processor-side storage is zero; its cost is the
/// preventive refreshes themselves, which grow quickly as `NRH` decreases.
#[derive(Debug, Clone)]
pub struct Para {
    probability: f64,
    geometry: DramGeometry,
    rng: SmallRng,
    stats: MitigationStats,
}

impl Para {
    /// Creates PARA for RowHammer threshold `nrh`, deterministic under `seed`.
    pub fn new(nrh: u64, seed: u64, geometry: DramGeometry) -> Self {
        Para {
            probability: Self::probability_for(nrh),
            geometry,
            rng: SmallRng::seed_from_u64(seed),
            stats: MitigationStats::default(),
        }
    }

    /// The per-activation refresh probability for a given RowHammer threshold,
    /// targeting a 10⁻¹⁵ failure probability.
    pub fn probability_for(nrh: u64) -> f64 {
        let exponent = -15.0 / nrh as f64;
        1.0 - 10f64.powf(exponent)
    }

    /// The configured refresh probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

impl RowHammerMitigation for Para {
    // PARA keeps the default quiescent credit of 0: every activation is an
    // independent Bernoulli trial, so no batch is provably reaction-free.
    crate::impl_mitigation_checkpoint!(Para);

    fn name(&self) -> &str {
        "PARA"
    }

    fn on_activation(&mut self, addr: &DramAddr, _now: Cycle, weight: u64) -> MitigationResponse {
        self.stats.activations_observed += weight;
        // A weight > 1 (RowPress-adjusted) activation gets `weight` independent chances.
        let mut refresh = false;
        for _ in 0..weight {
            if self.rng.gen_bool(self.probability) {
                refresh = true;
            }
        }
        if refresh {
            self.stats.aggressors_identified += 1;
            let victims = addr.victim_rows(&self.geometry);
            self.stats.preventive_refreshes += victims.len() as u64;
            MitigationResponse::refresh(victims)
        } else {
            MitigationResponse::none()
        }
    }

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MitigationStats::default();
    }

    fn storage_bits(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(row: usize) -> DramAddr {
        DramAddr { channel: 0, rank: 0, bank_group: 0, bank: 0, row, column: 0 }
    }

    #[test]
    fn probability_increases_as_threshold_decreases() {
        let p1k = Para::probability_for(1000);
        let p125 = Para::probability_for(125);
        assert!(p125 > p1k);
        // ln(1e-15) ≈ -34.5, so p ≈ 34.5 / NRH for large NRH.
        assert!((p1k - 0.0339).abs() < 0.005, "p1k = {p1k}");
        assert!((p125 - 0.24).abs() < 0.03, "p125 = {p125}");
    }

    #[test]
    fn refresh_rate_matches_probability() {
        let g = DramGeometry::paper_default();
        let mut para = Para::new(500, 42, g);
        let n = 200_000u64;
        let mut triggered = 0u64;
        for i in 0..n {
            let r = para.on_activation(&addr((i % 1000) as usize + 1), i, 1);
            if !r.refresh_victims.is_empty() {
                triggered += 1;
            }
        }
        let rate = triggered as f64 / n as f64;
        let expected = Para::probability_for(500);
        assert!((rate - expected).abs() < 0.01, "rate {rate} vs expected {expected}");
    }

    #[test]
    fn refreshes_target_adjacent_rows() {
        let g = DramGeometry::paper_default();
        let mut para = Para::new(125, 7, g);
        for i in 0..10_000u64 {
            let r = para.on_activation(&addr(500), i, 1);
            for v in &r.refresh_victims {
                assert!(v.row == 499 || v.row == 501);
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let g = DramGeometry::paper_default();
        let mut a = Para::new(250, 99, g.clone());
        let mut b = Para::new(250, 99, g);
        for i in 0..5_000u64 {
            assert_eq!(a.on_activation(&addr(10), i, 1), b.on_activation(&addr(10), i, 1));
        }
    }

    #[test]
    fn stateless_storage() {
        let g = DramGeometry::paper_default();
        assert_eq!(Para::new(125, 0, g).storage_bits(), 0);
    }
}
