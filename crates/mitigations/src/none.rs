//! The unprotected baseline: no RowHammer mitigation at all.

use crate::stats::MitigationStats;
use crate::traits::{MitigationResponse, RowHammerMitigation};
use comet_dram::{Cycle, DramAddr};

/// Baseline mechanism that observes activations but never takes any action.
///
/// Every experiment in the paper normalizes results to a system with this
/// "mechanism" installed.
#[derive(Debug, Clone, Default)]
pub struct NoMitigation {
    stats: MitigationStats,
}

impl NoMitigation {
    /// Creates the baseline mechanism.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RowHammerMitigation for NoMitigation {
    crate::impl_mitigation_checkpoint!(NoMitigation);

    fn name(&self) -> &str {
        "Baseline"
    }

    fn quiescent_activations(&self) -> u64 {
        // Never reacts: any number of activations may be deferred and batched.
        u64::MAX
    }

    fn on_activation(&mut self, _addr: &DramAddr, _now: Cycle, weight: u64) -> MitigationResponse {
        self.stats.activations_observed += weight;
        MitigationResponse::none()
    }

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MitigationStats::default();
    }

    fn storage_bits(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_acts() {
        let mut m = NoMitigation::new();
        let addr = DramAddr { channel: 0, rank: 0, bank_group: 0, bank: 0, row: 1, column: 0 };
        for i in 0..10_000 {
            assert!(m.on_activation(&addr, i, 1).is_nop());
        }
        assert_eq!(m.stats().activations_observed, 10_000);
        assert_eq!(m.stats().preventive_refreshes, 0);
        assert_eq!(m.storage_bits(), 0);
    }

    #[test]
    fn reset_clears_stats() {
        let mut m = NoMitigation::new();
        let addr = DramAddr { channel: 0, rank: 0, bank_group: 0, bank: 0, row: 1, column: 0 };
        m.on_activation(&addr, 0, 1);
        m.reset_stats();
        assert_eq!(m.stats().activations_observed, 0);
    }
}
