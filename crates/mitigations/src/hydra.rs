//! Hydra: hybrid group/per-row activation tracking (Qureshi et al., ISCA 2022).

use crate::hashers::IntMap;
use crate::stats::MitigationStats;
use crate::traits::{MitigationResponse, RowHammerMitigation};
use comet_dram::{Cycle, DramAddr, DramGeometry, TimingParams};

/// Configuration of the Hydra mechanism.
///
/// Hydra keeps a small SRAM *Group Count Table* (GCT) in the memory controller
/// that tracks activations at the granularity of row groups. Only when a group
/// counter exceeds `group_threshold` does Hydra start maintaining precise
/// per-row counters, which live in DRAM (*Row Count Table*, RCT) and are cached
/// in the memory controller (*Row Count Cache*, RCC). Per-row counters that are
/// not cached must be fetched from (and written back to) DRAM, which is where
/// Hydra's performance overhead comes from at low thresholds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HydraConfig {
    /// RowHammer threshold to defend against.
    pub nrh: u64,
    /// Rows per tracking group.
    pub rows_per_group: usize,
    /// Group counter value that switches the group to per-row tracking.
    pub group_threshold: u64,
    /// Per-row counter value that triggers a preventive refresh.
    pub row_threshold: u64,
    /// Entries in the Row Count Cache (shared across the channel).
    pub rcc_entries: usize,
    /// Tracker reset period in cycles.
    pub reset_period: Cycle,
    /// Row-tag bits for RCC storage accounting.
    pub tag_bits: u32,
}

impl HydraConfig {
    /// Hydra's configuration for `nrh`, following the original paper's sizing
    /// (group threshold = 4/5 of the per-row threshold, 128 rows per group,
    /// 4 K-entry row count cache) as referenced by the CoMeT paper's §6.
    pub fn for_threshold(nrh: u64, timing: &TimingParams, geometry: &DramGeometry) -> Self {
        let row_threshold = (nrh / 2).max(2);
        HydraConfig {
            nrh,
            rows_per_group: 128,
            group_threshold: (row_threshold * 4 / 5).max(1),
            row_threshold,
            rcc_entries: 4096,
            reset_period: timing.t_refw,
            tag_bits: geometry.row_bits() + 5,
        }
    }

    /// Bits per activation counter.
    pub fn counter_bits(&self) -> u32 {
        64 - self.row_threshold.leading_zeros()
    }

    /// Processor-side storage in bits for a channel of `geometry`
    /// (GCT for every bank + the shared RCC). The RCT lives in DRAM and is not
    /// counted here (the paper reports it separately as 4 MiB of DRAM storage).
    pub fn storage_bits(&self, geometry: &DramGeometry) -> u64 {
        let groups_per_bank = geometry.rows_per_bank.div_ceil(self.rows_per_group) as u64;
        let gct_bits = groups_per_bank * geometry.banks_per_channel() as u64 * self.counter_bits() as u64;
        let rcc_bits = self.rcc_entries as u64 * (self.tag_bits + self.counter_bits()) as u64;
        gct_bits + rcc_bits
    }
}

/// Packs a `(bank, row)` pair into one `u64` key.
///
/// The per-row structures (RCT, RCC) are keyed by bank and row; hashing one
/// `u64` instead of a two-`usize` tuple halves the bytes fed to the hasher on
/// every per-row lookup of the activation path. Row indices fit comfortably
/// in 32 bits (banks hold at most a few hundred thousand rows).
#[inline(always)]
fn pack_key(bank: usize, row: usize) -> u64 {
    debug_assert!(row <= u32::MAX as usize);
    ((bank as u64) << 32) | row as u64
}

/// A direct-indexed model of the Row Count Cache with LRU-free random-ish replacement
/// (FIFO order), sized in entries. Keys are packed `(bank, row)` pairs.
#[derive(Debug, Clone, Default)]
struct RowCountCache {
    /// Packed (bank, row) → counter value.
    entries: IntMap<u64, u64>,
    /// Insertion order for eviction.
    order: std::collections::VecDeque<u64>,
}

impl RowCountCache {
    fn get_mut(&mut self, key: &u64) -> Option<&mut u64> {
        self.entries.get_mut(key)
    }

    /// Inserts `key`, evicting the oldest entry if at `capacity`.
    /// Returns the evicted `(key, value)` pair — the write-back — if any.
    fn insert(&mut self, key: u64, value: u64, capacity: usize) -> Option<(u64, u64)> {
        let mut evicted = None;
        if !self.entries.contains_key(&key) && self.entries.len() >= capacity {
            if let Some(old) = self.order.pop_front() {
                let old_value = self.entries.remove(&old).expect("ordered keys are cached");
                evicted = Some((old, old_value));
            }
        }
        if self.entries.insert(key, value).is_none() {
            self.order.push_back(key);
        }
        evicted
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }
}

/// The Hydra mechanism protecting one DRAM channel.
#[derive(Debug, Clone)]
pub struct Hydra {
    config: HydraConfig,
    geometry: DramGeometry,
    /// Group counters as one flat array indexed `bank * groups + group` — the
    /// SRAM fast path touches exactly one cache-friendly slot instead of
    /// chasing a per-bank `Vec` pointer first.
    gct: Vec<u64>,
    /// Groups per bank (the flat GCT's inner stride).
    groups: usize,
    /// Backing store of per-row counters (models the RCT that lives in DRAM),
    /// keyed by packed `(bank, row)`.
    rct: IntMap<u64, u64>,
    rcc: RowCountCache,
    /// Upper bound on the largest group counter, folded on the cheap path.
    /// Only answers [`RowHammerMitigation::quiescent_activations`]; once any
    /// group saturates it pins the credit to 0 until the periodic reset.
    gct_max: u64,
    next_reset: Cycle,
    stats: MitigationStats,
}

impl Hydra {
    /// Creates Hydra for one channel of `geometry`.
    pub fn new(config: HydraConfig, geometry: DramGeometry) -> Self {
        let banks = geometry.banks_per_channel();
        let groups = geometry.rows_per_bank.div_ceil(config.rows_per_group);
        Hydra {
            next_reset: config.reset_period,
            config,
            geometry,
            gct: vec![0; banks * groups],
            groups,
            rct: IntMap::default(),
            rcc: RowCountCache::default(),
            gct_max: 0,
            stats: MitigationStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &HydraConfig {
        &self.config
    }

    fn maybe_reset(&mut self, now: Cycle) {
        if now >= self.next_reset {
            self.gct.iter_mut().for_each(|c| *c = 0);
            self.gct_max = 0;
            self.rct.clear();
            self.rcc.clear();
            self.stats.periodic_resets += 1;
            while self.next_reset <= now {
                self.next_reset += self.config.reset_period;
            }
        }
    }
}

impl RowHammerMitigation for Hydra {
    crate::impl_mitigation_checkpoint!(Hydra);

    fn name(&self) -> &str {
        "Hydra"
    }

    fn quiescent_activations(&self) -> u64 {
        // While every group counter stays below the group threshold each
        // activation takes the SRAM cheap path and is a nop; past saturation
        // any touch of the hot group may cost counter traffic, so no credit.
        self.config.group_threshold.saturating_sub(self.gct_max)
    }

    fn on_activation(&mut self, addr: &DramAddr, now: Cycle, weight: u64) -> MitigationResponse {
        self.maybe_reset(now);
        self.stats.activations_observed += weight;
        let bank = addr.flat_bank(&self.geometry);
        let group = addr.row / self.config.rows_per_group;
        let key = pack_key(bank, addr.row);
        let mut response = MitigationResponse::none();

        let group_counter = &mut self.gct[bank * self.groups + group];
        if *group_counter < self.config.group_threshold {
            // Cheap path: only the SRAM group counter is touched.
            *group_counter += weight;
            self.gct_max = self.gct_max.max(*group_counter);
            return response;
        }

        // Per-row tracking: the counter must be present in the RCC. The cached
        // RCC entry is authoritative and the RCT is only written back on
        // eviction: the RCT is read exclusively on RCC misses, a key leaves
        // the RCC only through an eviction write-back or a full reset, so the
        // lazy RCT always agrees with what the former write-through model
        // (one RCT store per tracked activation) would have fetched.
        let value = match self.rcc.get_mut(&key) {
            // RCC hit: one cache probe covers the whole update.
            Some(counter) => {
                *counter += weight;
                *counter
            }
            None => {
                // Fetch from the RCT in DRAM. A row touched for the first time after its
                // group saturated inherits the (conservative) group counter value.
                let initial = *self.rct.get(&key).unwrap_or(&self.config.group_threshold);
                response.counter_reads += 1;
                self.stats.counter_reads += 1;
                let value = initial + weight;
                if let Some((old_key, old_value)) = self.rcc.insert(key, value, self.config.rcc_entries) {
                    self.rct.insert(old_key, old_value);
                    response.counter_writes += 1;
                    self.stats.counter_writes += 1;
                }
                value
            }
        };

        if value >= self.config.row_threshold {
            // Preventive refresh and counter reset.
            if let Some(c) = self.rcc.get_mut(&key) {
                *c = 0;
            }
            self.stats.aggressors_identified += 1;
            let victims = addr.victim_rows(&self.geometry);
            self.stats.preventive_refreshes += victims.len() as u64;
            response.refresh_victims = victims;
        }
        response
    }

    fn on_tick(&mut self, now: Cycle) {
        self.maybe_reset(now);
    }

    fn next_tick_deadline(&self) -> Cycle {
        self.next_reset
    }

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MitigationStats::default();
    }

    fn storage_bits(&self) -> u64 {
        self.config.storage_bits(&self.geometry)
    }

    fn telemetry_gauges(&self) -> Vec<(&'static str, f64)> {
        // RCC pressure is Hydra's whole performance story (every RCC miss is
        // off-chip counter traffic), so expose how full the cache and the
        // DRAM-resident row-count table are, plus how many groups have
        // escalated to per-row tracking.
        let escalated = self.gct.iter().filter(|&&c| c >= self.config.group_threshold).count();
        vec![
            ("rcc_occupancy", self.rcc.entries.len() as f64),
            ("rct_rows", self.rct.len() as f64),
            ("gct_escalated_groups", escalated as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(nrh: u64) -> Hydra {
        let geometry = DramGeometry::paper_default();
        let timing = TimingParams::ddr4_2400();
        Hydra::new(HydraConfig::for_threshold(nrh, &timing, &geometry), geometry)
    }

    fn addr(row: usize) -> DramAddr {
        DramAddr { channel: 0, rank: 0, bank_group: 0, bank: 0, row, column: 0 }
    }

    #[test]
    fn group_counting_avoids_dram_traffic_below_threshold() {
        let mut h = setup(1000);
        let gt = h.config().group_threshold;
        for i in 0..gt {
            let r = h.on_activation(&addr((i % 128) as usize), i, 1);
            assert!(r.is_nop(), "no DRAM traffic expected below the group threshold");
        }
        assert_eq!(h.stats().counter_reads, 0);
    }

    #[test]
    fn saturated_group_causes_counter_fetches() {
        let mut h = setup(1000);
        let gt = h.config().group_threshold;
        // Saturate group 0 by spreading activations over its 128 rows.
        for i in 0..gt {
            h.on_activation(&addr((i % 128) as usize), i, 1);
        }
        // The next activation to the group needs a per-row counter from DRAM.
        let r = h.on_activation(&addr(0), gt + 1, 1);
        assert_eq!(r.counter_reads, 1);
        assert!(h.stats().counter_reads >= 1);
    }

    #[test]
    fn hammered_row_is_refreshed_before_nrh() {
        let nrh = 500;
        let mut h = setup(nrh);
        let mut first_refresh = None;
        for i in 0..nrh {
            let r = h.on_activation(&addr(42), i, 1);
            if !r.refresh_victims.is_empty() && first_refresh.is_none() {
                first_refresh = Some(i + 1);
            }
        }
        let first = first_refresh.expect("hammered row must be refreshed before NRH activations");
        assert!(first <= nrh, "first refresh too late: {first}");
    }

    #[test]
    fn memory_intensive_group_spray_overestimates() {
        // Hydra's known weakness (paper §3.2): many distinct rows of the same group,
        // each activated a few times, saturate the group counter and force per-row
        // tracking with DRAM traffic even though no row is anywhere near NRH.
        let mut h = setup(125);
        let gt = h.config().group_threshold;
        let mut traffic = 0u64;
        for round in 0..(gt * 2) {
            let row = (round % 128) as usize;
            let r = h.on_activation(&addr(row), round, 1);
            traffic += (r.counter_reads + r.counter_writes) as u64;
        }
        assert!(traffic > 0, "group spraying should generate DRAM counter traffic");
    }

    #[test]
    fn rcc_evictions_cause_writebacks() {
        let geometry = DramGeometry::paper_default();
        let timing = TimingParams::ddr4_2400();
        let mut config = HydraConfig::for_threshold(125, &timing, &geometry);
        config.rcc_entries = 4; // tiny cache to force evictions
        config.group_threshold = 1;
        let mut h = Hydra::new(config, geometry);
        let mut writebacks = 0u64;
        for i in 0..1000u64 {
            let r = h.on_activation(&addr((i % 64) as usize), i, 1);
            writebacks += r.counter_writes as u64;
        }
        assert!(writebacks > 0);
    }

    #[test]
    fn periodic_reset_clears_group_counters() {
        let mut h = setup(1000);
        let gt = h.config().group_threshold;
        let period = h.config().reset_period;
        for i in 0..gt {
            h.on_activation(&addr((i % 128) as usize), i, 1);
        }
        // After the reset period the group counter starts from zero again.
        let r = h.on_activation(&addr(0), period + 1, 1);
        assert!(r.is_nop());
        assert_eq!(h.stats().periodic_resets, 1);
    }

    #[test]
    fn storage_smaller_than_graphene_at_low_threshold() {
        use crate::graphene::GrapheneConfig;
        let geometry = DramGeometry::paper_default();
        let timing = TimingParams::ddr4_2400();
        let hydra = HydraConfig::for_threshold(125, &timing, &geometry);
        let graphene = GrapheneConfig::for_threshold(125, &timing, &geometry);
        let graphene_bits = graphene.storage_bits_per_bank() * geometry.banks_per_channel() as u64;
        assert!(hydra.storage_bits(&geometry) < graphene_bits / 4);
    }
}
