//! A fast, deterministic hasher for the trackers' hot-path maps.
//!
//! The mechanisms' per-row state (Graphene's Misra-Gries entries, Hydra's
//! RCC/RCT, BlockHammer's throttle deadlines) is keyed by small integers and
//! probed once or more per simulated activation, where the standard library's
//! default SipHash costs more than the rest of the lookup. This multiply-fold
//! hasher is a few instructions per key, and — unlike `RandomState` — it is
//! deterministic across runs and instances, so tracker behavior can never
//! depend on per-process hasher randomness.
//!
//! Not DoS-resistant, which is irrelevant for simulator-internal state.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed through [`IntHasher`].
pub(crate) type IntMap<K, V> = HashMap<K, V, BuildHasherDefault<IntHasher>>;

/// Multiply-fold hasher for integer keys.
#[derive(Debug, Default, Clone)]
pub(crate) struct IntHasher(u64);

impl IntHasher {
    /// Golden-ratio multiplier; spreads consecutive integers across buckets.
    const MULTIPLIER: u64 = 0x9E37_79B9_7F4A_7C15;

    #[inline(always)]
    fn fold(&mut self, n: u64) {
        let x = (self.0 ^ n).wrapping_mul(Self::MULTIPLIER);
        // Feed the strong high bits back into the low bits: hash-map bucket
        // selection uses the low bits, the multiply strengthens the high ones.
        self.0 = x ^ (x >> 29);
    }
}

impl Hasher for IntHasher {
    #[inline(always)]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Cold fallback for non-integer keys (none on the hot paths).
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline(always)]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline(always)]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }

    #[inline(always)]
    fn write_u32(&mut self, n: u32) {
        self.fold(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut maps = (0..2).map(|_| IntMap::<u64, u64>::default());
        let a = maps.next().unwrap();
        let b = maps.next().unwrap();
        let hash = |map: &IntMap<u64, u64>, key: u64| {
            use std::hash::BuildHasher;
            map.hasher().hash_one(key)
        };
        for key in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(hash(&a, key), hash(&b, key));
        }
    }

    #[test]
    fn consecutive_keys_spread_over_buckets() {
        use std::hash::BuildHasher;
        let map = IntMap::<u64, u64>::default();
        let mut low_bits = std::collections::HashSet::new();
        for key in 0u64..256 {
            low_bits.insert(map.hasher().hash_one(key) & 0xFF);
        }
        // A multiply-fold hash must not collapse consecutive integers onto a
        // handful of buckets.
        assert!(low_bits.len() > 128, "only {} distinct low bytes", low_bits.len());
    }

    #[test]
    fn behaves_as_a_normal_map() {
        let mut map = IntMap::<usize, u64>::default();
        for i in 0..1000usize {
            map.insert(i, (i * 3) as u64);
        }
        assert_eq!(map.len(), 1000);
        for i in 0..1000usize {
            assert_eq!(map.get(&i), Some(&((i * 3) as u64)));
        }
    }
}
