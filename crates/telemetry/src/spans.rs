//! Lightweight span tracing: scope guards timing named phases into bounded
//! per-thread ring buffers.
//!
//! Tracing is off by default. A disabled [`span`] call is one relaxed atomic
//! load — no clock read, no allocation, no lock — so instrumentation can stay
//! in place on hot-adjacent paths permanently. When enabled, the guard reads
//! a monotonic clock on entry and drop, and pushes one fixed-size record into
//! the calling thread's ring. Rings are bounded: the oldest record is
//! overwritten and counted, never blocking the traced thread.
//!
//! [`drain_spans`] collects and clears every thread's ring; the bench `perf
//! --spans OUT.jsonl` flag writes the result as JSON lines.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Per-thread ring capacity, in records.
const RING_CAPACITY: usize = 4096;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables span collection process-wide.
pub fn set_spans_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether spans are currently being collected.
#[inline]
pub fn spans_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process epoch all span timestamps are relative to (first use wins).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// One completed span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// The static name passed to [`span`].
    pub name: &'static str,
    /// Small dense id of the recording thread.
    pub thread: u32,
    /// Entry time in microseconds since the process epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// A bounded ring of span records for one thread. Pushes come only from the
/// owning thread; the mutex exists so a drain from another thread is safe,
/// and is uncontended on the push path.
struct Ring {
    thread: u32,
    records: Mutex<Vec<SpanRecord>>,
    /// Next write position once the ring has wrapped.
    cursor: Mutex<usize>,
    dropped: AtomicU64,
}

impl Ring {
    fn push(&self, record: SpanRecord) {
        let mut records = self.records.lock().unwrap();
        if records.len() < RING_CAPACITY {
            records.push(record);
        } else {
            let mut cursor = self.cursor.lock().unwrap();
            records[*cursor] = record;
            *cursor = (*cursor + 1) % RING_CAPACITY;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static THREAD_RING: Arc<Ring> = {
        let mut all = rings().lock().unwrap();
        let ring = Arc::new(Ring {
            thread: all.len() as u32,
            records: Mutex::new(Vec::new()),
            cursor: Mutex::new(0),
            dropped: AtomicU64::new(0),
        });
        all.push(ring.clone());
        ring
    };
}

/// Times a scope. Bind the guard (`let _span = span("phase");`) — the span
/// ends when the guard drops. Returns an inert guard when tracing is off.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !spans_enabled() {
        return SpanGuard { name, started: None };
    }
    SpanGuard { name, started: Some(Instant::now()) }
}

/// Live span; records itself on drop. See [`span`].
pub struct SpanGuard {
    name: &'static str,
    started: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(started) = self.started else { return };
        let start_us = started.duration_since(epoch()).as_micros() as u64;
        let dur_us = started.elapsed().as_micros() as u64;
        THREAD_RING.with(|ring| {
            ring.push(SpanRecord { name: self.name, thread: ring.thread, start_us, dur_us });
        });
    }
}

/// Collects and clears every thread's ring, sorted by start time. The second
/// element is the number of records lost to ring overflow since the last
/// drain.
pub fn drain_spans() -> (Vec<SpanRecord>, u64) {
    let all = rings().lock().unwrap();
    let mut collected = Vec::new();
    let mut dropped = 0u64;
    for ring in all.iter() {
        let mut records = ring.records.lock().unwrap();
        collected.append(&mut records);
        *ring.cursor.lock().unwrap() = 0;
        dropped += ring.dropped.swap(0, Ordering::Relaxed);
    }
    collected.sort_by_key(|r| r.start_us);
    (collected, dropped)
}

/// Drains all spans as JSON lines — one object per span, in start order.
pub fn drain_spans_jsonl() -> String {
    let (records, dropped) = drain_spans();
    let mut out = String::new();
    for r in records {
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"thread\":{},\"start_us\":{},\"dur_us\":{}}}\n",
            r.name, r.thread, r.start_us, r.dur_us
        ));
    }
    if dropped > 0 {
        out.push_str(&format!(
            "{{\"name\":\"_dropped\",\"thread\":0,\"start_us\":0,\"dur_us\":{dropped}}}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enable flag and ring registry are process-global, so these tests
    // share state with each other; each drains before asserting.

    #[test]
    fn disabled_spans_record_nothing() {
        set_spans_enabled(false);
        drain_spans();
        {
            let _s = span("quiet");
        }
        let (records, _) = drain_spans();
        assert!(records.iter().all(|r| r.name != "quiet"));
    }

    #[test]
    fn enabled_spans_are_recorded_and_drained_once() {
        set_spans_enabled(true);
        drain_spans();
        {
            let _s = span("phase_a");
            let _inner = span("phase_b");
        }
        set_spans_enabled(false);
        let (records, dropped) = drain_spans();
        assert_eq!(dropped, 0);
        let names: Vec<&str> = records.iter().map(|r| r.name).collect();
        assert!(names.contains(&"phase_a"), "got {names:?}");
        assert!(names.contains(&"phase_b"), "got {names:?}");
        let (again, _) = drain_spans();
        assert!(again.is_empty());
    }

    #[test]
    fn jsonl_lines_are_parseable_objects() {
        set_spans_enabled(true);
        drain_spans();
        {
            let _s = span("jsonl_probe");
        }
        set_spans_enabled(false);
        let text = drain_spans_jsonl();
        let line = text.lines().find(|l| l.contains("jsonl_probe")).expect("probe line");
        assert!(line.starts_with("{\"name\":\"jsonl_probe\",\"thread\":"));
        assert!(line.contains("\"start_us\":") && line.ends_with('}'));
    }

    #[test]
    fn rings_are_bounded() {
        set_spans_enabled(true);
        drain_spans();
        for _ in 0..(RING_CAPACITY + 10) {
            let _s = span("flood");
        }
        set_spans_enabled(false);
        let (records, dropped) = drain_spans();
        let flood = records.iter().filter(|r| r.name == "flood").count();
        assert!(flood <= RING_CAPACITY);
        assert!(dropped >= 10);
    }
}
