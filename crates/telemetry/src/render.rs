//! Prometheus text exposition (format 0.0.4) and a terminal table renderer.
//!
//! Rendering walks the registry under its lock and reads every atomic with
//! relaxed ordering — a scrape observes each counter at some instant during
//! the walk, which is all the exposition format promises. Families render in
//! name order (the registry keys a `BTreeMap`) and series within a family in
//! sorted label order, so output is deterministic for a deterministic run.

use crate::registry::{Kind, Registry, SeriesValue};
use std::sync::atomic::Ordering;

/// Escapes a HELP string: backslashes and newlines.
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslashes, double quotes, and newlines.
fn escape_label(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Formats a sample value the way Prometheus expects: integral values
/// without a fractional part, everything else via Rust's shortest-roundtrip
/// float formatting.
fn format_value(value: f64) -> String {
    if value.is_finite() && value == value.trunc() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// `{a="1",b="2"}` for a sorted label set, with `extra` (the histogram `le`
/// label) appended last; empty string when there are no labels at all.
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders `registry` as Prometheus text exposition.
pub fn render(registry: &Registry) -> String {
    let families = registry.families.lock().unwrap();
    let mut out = String::new();
    for (name, family) in families.iter() {
        if family.series.is_empty() {
            continue;
        }
        out.push_str(&format!("# HELP {name} {}\n", escape_help(&family.help)));
        out.push_str(&format!("# TYPE {name} {}\n", family.kind.as_str()));
        let mut series: Vec<_> = family.series.iter().collect();
        series.sort_by(|a, b| a.labels.cmp(&b.labels));
        for s in series {
            match (&family.kind, &s.value) {
                (Kind::Counter, SeriesValue::Scalar(cell)) => {
                    let value = cell.load(Ordering::Relaxed);
                    out.push_str(&format!("{name}{} {value}\n", label_block(&s.labels, None)));
                }
                (Kind::Gauge, SeriesValue::Scalar(cell)) => {
                    let value = f64::from_bits(cell.load(Ordering::Relaxed));
                    out.push_str(&format!(
                        "{name}{} {}\n",
                        label_block(&s.labels, None),
                        format_value(value)
                    ));
                }
                (Kind::Histogram, SeriesValue::Histogram(core)) => {
                    let mut cumulative = 0u64;
                    for (i, bound) in core.bounds.iter().enumerate() {
                        cumulative += core.buckets[i].load(Ordering::Relaxed);
                        out.push_str(&format!(
                            "{name}_bucket{} {cumulative}\n",
                            label_block(&s.labels, Some(("le", &format_value(*bound))))
                        ));
                    }
                    cumulative += core.buckets[core.bounds.len()].load(Ordering::Relaxed);
                    out.push_str(&format!(
                        "{name}_bucket{} {cumulative}\n",
                        label_block(&s.labels, Some(("le", "+Inf")))
                    ));
                    let sum = f64::from_bits(core.sum_bits.load(Ordering::Relaxed));
                    out.push_str(&format!(
                        "{name}_sum{} {}\n",
                        label_block(&s.labels, None),
                        format_value(sum)
                    ));
                    out.push_str(&format!(
                        "{name}_count{} {}\n",
                        label_block(&s.labels, None),
                        core.count.load(Ordering::Relaxed)
                    ));
                }
                _ => unreachable!("kind/value pairing enforced at registration"),
            }
        }
    }
    out
}

/// Renders exposition text as an aligned two-column terminal table (series,
/// value), dropping comment lines. Used by `service metrics --watch`.
pub fn tabulate(exposition: &str) -> String {
    let mut rows: Vec<(&str, &str)> = Vec::new();
    for line in exposition.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // The value is the text after the last space; the series name (with
        // its label block, which may contain spaces inside quotes) is the rest.
        if let Some(split) = line.rfind(' ') {
            rows.push((&line[..split], line[split + 1..].trim()));
        }
    }
    let width = rows.iter().map(|(series, _)| series.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (series, value) in rows {
        out.push_str(&format!("{series:<width$}  {value}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn help_and_label_escaping() {
        let registry = Registry::new();
        registry.counter_with("odd_total", "Help with \\ and\nnewline.", &[("path", "a\"b\\c\nd")]).inc();
        let text = registry.render();
        assert!(text.contains("# HELP odd_total Help with \\\\ and\\nnewline."));
        assert!(text.contains("odd_total{path=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn labels_render_in_sorted_key_order() {
        let registry = Registry::new();
        registry.counter_with("t_total", "T.", &[("zeta", "1"), ("alpha", "2")]).inc();
        let text = registry.render();
        assert!(text.contains("t_total{alpha=\"2\",zeta=\"1\"} 1"), "got: {text}");
    }

    #[test]
    fn families_render_in_name_order_with_help_and_type() {
        let registry = Registry::new();
        registry.counter("b_total", "B.").inc();
        registry.gauge("a_gauge", "A.").set(3.0);
        let text = registry.render();
        let a = text.find("# HELP a_gauge A.").expect("a_gauge help");
        let b = text.find("# HELP b_total B.").expect("b_total help");
        assert!(a < b);
        assert!(text.contains("# TYPE a_gauge gauge"));
        assert!(text.contains("# TYPE b_total counter"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_monotone_with_inf_sum_count() {
        let registry = Registry::new();
        let h = registry.histogram("lat_ms", "Latency.", &[1.0, 5.0, 25.0]);
        for v in [0.5, 0.7, 3.0, 30.0, 100.0] {
            h.observe(v);
        }
        let text = registry.render();
        let bucket = |le: &str| -> u64 {
            let needle = format!("lat_ms_bucket{{le=\"{le}\"}} ");
            let start = text.find(&needle).unwrap_or_else(|| panic!("missing bucket le={le}"));
            text[start + needle.len()..].split_whitespace().next().unwrap().parse().unwrap()
        };
        let counts = [bucket("1"), bucket("5"), bucket("25"), bucket("+Inf")];
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "non-monotone: {counts:?}");
        assert_eq!(counts[3], 5);
        assert!(text.contains("lat_ms_sum 134.2"));
        assert!(text.contains("lat_ms_count 5"));
    }

    #[test]
    fn integral_gauges_render_without_fraction() {
        let registry = Registry::new();
        registry.gauge("n", "N.").set(7.0);
        assert!(registry.render().contains("\nn 7\n"));
    }

    #[test]
    fn empty_families_are_skipped() {
        let registry = Registry::new();
        let g = registry.gauge_with("w", "W.", &[("worker", "x")]);
        g.set(1.0);
        registry.remove_series("w", &[("worker", "x")]);
        assert_eq!(registry.render(), "");
    }

    #[test]
    fn tabulate_aligns_and_drops_comments() {
        let text = "# HELP a A.\n# TYPE a counter\na 1\nlong_name{x=\"1\"} 2\n";
        let table = tabulate(text);
        assert_eq!(table, "a                 1\nlong_name{x=\"1\"}  2\n");
    }
}
