//! The metrics registry: named families of counters, gauges, and histograms.
//!
//! Registration is the only locked path. A handle returned by the registry
//! owns an `Arc` straight to the atomics backing its series, so instrumented
//! code updates a metric with one relaxed atomic RMW — the registry's mutex,
//! the family map, and the label strings are never touched again.
//!
//! Registration is get-or-create: asking twice for the same `(name, labels)`
//! pair returns handles to the same series, which lets independent layers
//! (or repeated simulation runs) accumulate into one counter without
//! coordinating. Registering a name under two different metric kinds is a
//! programming error and panics.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonic counter. `store` exists for the one sanctioned exception to
/// monotonic increments: mirroring an authoritative counter kept elsewhere
/// (the fleet's lease table) into the registry under that structure's lock.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — only for mirroring an external source of truth.
    #[inline]
    pub fn store(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: an `f64` stored as its bit pattern in one `AtomicU64`.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (compare-and-swap loop; gauges are not hot-path metrics).
    pub fn add(&self, delta: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.0.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Backing storage for one histogram series.
pub(crate) struct HistogramCore {
    /// Upper bounds of the finite buckets, strictly increasing. One implicit
    /// `+Inf` bucket follows.
    pub(crate) bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; `bounds.len() + 1`
    /// entries, the last being the `+Inf` bucket.
    pub(crate) buckets: Vec<AtomicU64>,
    /// Sum of observations as `f64` bits.
    pub(crate) sum_bits: AtomicU64,
    /// Total observation count.
    pub(crate) count: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[f64]) -> Self {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "histogram bounds must be strictly increasing");
        HistogramCore {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    fn add_sum(&self, delta: f64) {
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.sum_bits.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }
}

/// A fixed-bucket histogram.
#[derive(Clone)]
pub struct Histogram(pub(crate) Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let core = &self.0;
        let index = core.bounds.iter().position(|&b| value <= b).unwrap_or(core.bounds.len());
        core.buckets[index].fetch_add(1, Ordering::Relaxed);
        core.add_sum(value);
        core.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Merges pre-aggregated per-bucket counts (non-cumulative, with the
    /// trailing `+Inf` bucket — `bounds().len() + 1` entries). This is how a
    /// hot loop that tallied into a plain local array publishes in one shot.
    pub fn add_counts(&self, counts: &[u64], sum: f64, count: u64) {
        let core = &self.0;
        assert_eq!(counts.len(), core.buckets.len(), "bucket count mismatch");
        for (slot, &n) in core.buckets.iter().zip(counts) {
            if n > 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
        core.add_sum(sum);
        core.count.fetch_add(count, Ordering::Relaxed);
    }

    /// The finite bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }

    /// Total observation count.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

/// Strictly increasing bounds `start, start*factor, …` (`count` values) —
/// the usual latency-bucket shape.
pub fn exponential_bounds(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && count > 0);
    let mut bounds = Vec::with_capacity(count);
    let mut bound = start;
    for _ in 0..count {
        bounds.push(bound);
        bound *= factor;
    }
    bounds
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

pub(crate) enum SeriesValue {
    Scalar(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

pub(crate) struct Series {
    /// Sorted by label key at registration.
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) value: SeriesValue,
}

pub(crate) struct Family {
    pub(crate) kind: Kind,
    pub(crate) help: String,
    pub(crate) series: Vec<Series>,
}

/// A set of metric families. Cheap to create; the experiment service owns one
/// per instance, the engine publishes into the process-wide [`global()`] one.
#[derive(Default)]
pub struct Registry {
    pub(crate) families: Mutex<BTreeMap<String, Family>>,
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut owned: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    owned.sort();
    owned
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn series_value(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> SeriesValue,
    ) -> SeriesValue {
        let labels = sorted_labels(labels);
        let mut families = self.families.lock().unwrap();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: Vec::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} registered as {} but requested as {}",
            family.kind.as_str(),
            kind.as_str()
        );
        if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
            return match &series.value {
                SeriesValue::Scalar(cell) => SeriesValue::Scalar(cell.clone()),
                SeriesValue::Histogram(core) => SeriesValue::Histogram(core.clone()),
            };
        }
        let value = make();
        let clone = match &value {
            SeriesValue::Scalar(cell) => SeriesValue::Scalar(cell.clone()),
            SeriesValue::Histogram(core) => SeriesValue::Histogram(core.clone()),
        };
        family.series.push(Series { labels, value });
        clone
    }

    /// Registers (or finds) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or finds) a counter with labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series_value(name, help, Kind::Counter, labels, || {
            SeriesValue::Scalar(Arc::new(AtomicU64::new(0)))
        }) {
            SeriesValue::Scalar(cell) => Counter(cell),
            SeriesValue::Histogram(_) => unreachable!("kind checked above"),
        }
    }

    /// Registers (or finds) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or finds) a gauge with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series_value(name, help, Kind::Gauge, labels, || {
            SeriesValue::Scalar(Arc::new(AtomicU64::new(0f64.to_bits())))
        }) {
            SeriesValue::Scalar(cell) => Gauge(cell),
            SeriesValue::Histogram(_) => unreachable!("kind checked above"),
        }
    }

    /// Registers (or finds) an unlabeled histogram with the given finite
    /// bucket bounds (strictly increasing; `+Inf` is implicit).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Registers (or finds) a histogram with labels.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        match self.series_value(name, help, Kind::Histogram, labels, || {
            SeriesValue::Histogram(Arc::new(HistogramCore::new(bounds)))
        }) {
            SeriesValue::Histogram(core) => Histogram(core),
            SeriesValue::Scalar(_) => unreachable!("kind checked above"),
        }
    }

    /// Drops one labeled series (a worker's gauges when it disconnects).
    /// Handles already held keep working but the series no longer renders.
    pub fn remove_series(&self, name: &str, labels: &[(&str, &str)]) {
        let labels = sorted_labels(labels);
        let mut families = self.families.lock().unwrap();
        if let Some(family) = families.get_mut(name) {
            family.series.retain(|s| s.labels != labels);
        }
    }

    /// Renders the registry as Prometheus text exposition (format 0.0.4).
    pub fn render(&self) -> String {
        crate::render::render(self)
    }
}

/// The process-wide registry used by the simulation engine and trackers.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_are_get_or_create() {
        let registry = Registry::new();
        let a = registry.counter("hits_total", "Hits.");
        let b = registry.counter("hits_total", "Hits.");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(b.get(), 5);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let registry = Registry::new();
        let x = registry.counter_with("acts_total", "ACTs.", &[("mech", "comet")]);
        let y = registry.counter_with("acts_total", "ACTs.", &[("mech", "hydra")]);
        x.add(2);
        y.add(3);
        assert_eq!(x.get(), 2);
        assert_eq!(y.get(), 3);
    }

    #[test]
    fn label_order_does_not_matter_at_registration() {
        let registry = Registry::new();
        let x = registry.counter_with("c_total", "C.", &[("a", "1"), ("b", "2")]);
        let y = registry.counter_with("c_total", "C.", &[("b", "2"), ("a", "1")]);
        x.inc();
        assert_eq!(y.get(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_conflicts_panic() {
        let registry = Registry::new();
        registry.counter("x_total", "X.");
        registry.gauge("x_total", "X.");
    }

    #[test]
    fn gauge_set_add_roundtrip() {
        let registry = Registry::new();
        let g = registry.gauge("depth", "Depth.");
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_observe_buckets_and_sum() {
        let registry = Registry::new();
        let h = registry.histogram("lat", "Latency.", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 55.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_add_counts_merges_bulk_tallies() {
        let registry = Registry::new();
        let h = registry.histogram("win", "Windows.", &[4.0, 16.0]);
        h.add_counts(&[7, 2, 1], 120.0, 10);
        h.add_counts(&[1, 0, 0], 2.0, 1);
        assert_eq!(h.count(), 11);
        assert!((h.sum() - 122.0).abs() < 1e-9);
    }

    #[test]
    fn remove_series_drops_it_from_rendering() {
        let registry = Registry::new();
        let g = registry.gauge_with("worker_busy", "Busy.", &[("worker", "w1")]);
        g.set(1.0);
        assert!(registry.render().contains("worker=\"w1\""));
        registry.remove_series("worker_busy", &[("worker", "w1")]);
        assert!(!registry.render().contains("worker=\"w1\""));
    }

    #[test]
    fn exponential_bounds_are_increasing() {
        let bounds = exponential_bounds(1.0, 2.0, 8);
        assert_eq!(bounds.len(), 8);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }
}
