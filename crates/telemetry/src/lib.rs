//! Dependency-free observability substrate for the CoMeT workspace.
//!
//! Three pieces, all built on `std` only:
//!
//! - [`registry`] — a metrics registry of monotonic counters, gauges, and
//!   fixed-bucket histograms. Labels are resolved once at registration time,
//!   so the hot path of every handle is a single relaxed atomic operation on
//!   an `Arc<AtomicU64>`; no string formatting or map lookup ever happens on
//!   the instrumented path.
//! - [`render`] — Prometheus text exposition (format 0.0.4) for a registry,
//!   plus a terminal table renderer used by the `service metrics --watch`
//!   CLI.
//! - [`spans`] — lightweight span tracing: scope guards that time a named
//!   phase into a bounded per-thread ring buffer, drainable as JSON lines.
//!   When tracing is disabled (the default) entering a span is one relaxed
//!   atomic load and no clock read.
//!
//! Two registries exist by convention: every [`Registry`] is an ordinary
//! value (the experiment service owns one per instance so tests never share
//! counters), and [`global()`] returns a process-wide registry used by the
//! simulation engine and tracker layers, whose metric names are prefixed
//! `comet_engine_` / `comet_tracker_` so the two render without collisions.

pub mod registry;
pub mod render;
pub mod spans;

pub use registry::{global, Counter, Gauge, Histogram, Registry};
pub use render::tabulate;
pub use spans::{drain_spans, drain_spans_jsonl, set_spans_enabled, span, spans_enabled, SpanRecord};
