//! Fault-injection suite: drive every recovery path of the service with a
//! deterministic [`FaultPlan`] and prove the service degrades instead of
//! lying — torn writes cost one re-simulation, corrupt segments quarantine,
//! ENOSPC flips cache-read-only degraded mode, worker panics retry and then
//! surface typed, floods shed with typed `overloaded` replies, and shutdown
//! drains queued work cleanly. Cached-after-crash results are asserted
//! bit-exact against fresh simulations throughout.

use comet_service::store::{result_projection, QUARANTINE_DIR};
use comet_service::{ExperimentService, FaultPlan, ServiceConfig};
use comet_sim::experiments::{CellBackend, CellSpec, ExperimentScope, ParallelExecutor};
use comet_sim::{MechanismKind, Runner, RunnerError};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("comet-faults-{tag}-{}-{unique}", std::process::id()))
}

fn smoke_runner() -> Runner {
    Runner::new(ExperimentScope::Smoke.sim_config())
}

fn cells() -> Vec<CellSpec> {
    vec![
        CellSpec::single("429.mcf", MechanismKind::Baseline, 1000),
        CellSpec::single("429.mcf", MechanismKind::Comet, 1000),
        CellSpec::single("bfs_ny", MechanismKind::Comet, 125),
    ]
}

/// A crash mid-append (torn final line) costs exactly one re-simulation on
/// restart, and the surviving cached results are bit-exact against a fresh
/// simulation of the same cells.
#[test]
fn torn_write_mid_batch_restart_is_warm_and_bit_exact() {
    let dir = temp_dir("torn");
    let _ = std::fs::remove_dir_all(&dir);
    let runner = smoke_runner();
    let cells = cells();

    // Golden results from a fresh, storeless service.
    let golden: Vec<String> = ExperimentService::new(ParallelExecutor::serial())
        .run_cells(&runner, &cells)
        .unwrap()
        .iter()
        .map(result_projection)
        .collect();

    // First lifetime: the third (last) append tears mid-line — the crash
    // artifact recovery expects. Serial executor makes the append order (and
    // so the torn cell) deterministic.
    {
        let plan = Arc::new(FaultPlan::new().tear_append(2, 25));
        let service = ExperimentService::with_fault_plan(
            ParallelExecutor::serial(),
            Some(dir.clone()),
            ServiceConfig::default(),
            plan,
        )
        .unwrap();
        let results = service.run_cells(&runner, &cells).unwrap();
        for (result, golden) in results.iter().zip(&golden) {
            assert_eq!(&result_projection(result), golden, "a persist fault never corrupts results");
        }
        let stats = service.stats();
        assert_eq!(stats.simulated, 3);
        assert_eq!(stats.persist_errors, 1, "the torn append is counted");
        assert!(!stats.degraded, "one failure does not degrade the service");
    }

    // Restart on the same directory: the torn tail is skipped in place, the
    // two durable cells reload, and only the torn cell re-simulates.
    let service = ExperimentService::with_cache_dir(ParallelExecutor::serial(), &dir).unwrap();
    let stats = service.stats();
    assert_eq!(stats.loaded_from_disk, 2, "both fully written cells reload");
    assert_eq!(stats.torn_lines, 1, "the torn tail is recognized as a crash artifact");
    assert_eq!(stats.quarantined_segments, 0, "a torn tail is not corruption");
    let results = service.run_cells(&runner, &cells).unwrap();
    let warm = service.stats();
    assert_eq!(warm.cache_hits, 2);
    assert_eq!(warm.simulated, 1, "only the torn cell re-simulates");
    for (result, golden) in results.iter().zip(&golden) {
        assert_eq!(&result_projection(result), golden, "cached-after-crash results are bit-exact");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mid-file corruption (bit rot, foreign writes) quarantines the segment:
/// the file moves to `quarantine/`, the entries before the corruption point
/// are kept, and startup never aborts.
#[test]
fn corrupt_segment_is_quarantined_not_fatal() {
    let dir = temp_dir("quarantine");
    let _ = std::fs::remove_dir_all(&dir);
    let runner = smoke_runner();
    let cells = cells();
    {
        let service = ExperimentService::with_cache_dir(ParallelExecutor::serial(), &dir).unwrap();
        service.run_cells(&runner, &cells).unwrap();
    }
    // Corrupt the middle line of the (single) segment.
    let segment = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
        .expect("one segment on disk");
    let content = std::fs::read_to_string(&segment).unwrap();
    let lines: Vec<&str> = content.lines().collect();
    assert_eq!(lines.len(), 3);
    std::fs::write(&segment, format!("{}\n###CORRUPT###\n{}\n", lines[0], lines[2])).unwrap();

    let service = ExperimentService::with_cache_dir(ParallelExecutor::serial(), &dir).unwrap();
    let stats = service.stats();
    assert_eq!(stats.quarantined_segments, 1, "mid-file corruption quarantines the segment");
    assert_eq!(stats.torn_lines, 0);
    assert_eq!(stats.loaded_from_disk, 1, "entries before the corruption point are kept");
    assert!(!segment.exists(), "the corrupt segment is moved out of the data dir");
    let quarantined = dir.join(QUARANTINE_DIR).join(segment.file_name().unwrap());
    assert!(quarantined.exists(), "the corrupt segment is preserved under quarantine/");

    // The service still serves everything: one hit, two re-simulations.
    service.run_cells(&runner, &cells).unwrap();
    let warm = service.stats();
    assert_eq!(warm.cache_hits, 1);
    assert_eq!(warm.simulated, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Persistent disk failure (ENOSPC on every append) flips the service into
/// cache-read-only degraded mode: requests keep succeeding bit-exactly,
/// further persistence is skipped, and `stats` reports the state.
#[test]
fn enospc_degrades_to_cache_read_only_and_keeps_serving() {
    let dir = temp_dir("enospc");
    let _ = std::fs::remove_dir_all(&dir);
    let runner = smoke_runner();
    let cells = cells();

    let plan = Arc::new(FaultPlan::new().enospc_from(0));
    let service = ExperimentService::with_fault_plan(
        ParallelExecutor::serial(),
        Some(dir.clone()),
        ServiceConfig::default(),
        plan.clone(),
    )
    .unwrap();

    let results = service.run_cells(&runner, &cells).unwrap();
    assert_eq!(results.len(), 3, "requests succeed while the disk is full");
    let stats = service.stats();
    assert_eq!(stats.persist_errors, 3);
    assert!(stats.degraded, "3 consecutive persist failures degrade the service");
    assert!(service.is_degraded());

    // Degraded mode stops touching the disk: a fourth cell simulates and is
    // served from memory without another append attempt.
    let extra = CellSpec::single("473.astar", MechanismKind::Baseline, 1000);
    service.run_cells(&runner, std::slice::from_ref(&extra)).unwrap();
    assert_eq!(plan.appends_seen(), 3, "no appends are attempted once degraded");
    // The in-memory cache still serves: re-running everything is pure hits.
    service.run_cells(&runner, &cells).unwrap();
    assert_eq!(service.stats().simulated, 4);
    assert_eq!(service.stats().cache_hits, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A panicking worker is retried on the same cell and succeeds within the
/// bounded retry budget; the panic never unwinds through the batch.
#[test]
fn worker_panic_is_retried_and_recovers() {
    let runner = smoke_runner();
    let cell = CellSpec::single("429.mcf", MechanismKind::Baseline, 1000);
    // Default config allows 2 retries (3 attempts); panic exactly twice.
    let plan = Arc::new(FaultPlan::new().panic_on(cell.label(), 2));
    let service =
        ExperimentService::with_fault_plan(ParallelExecutor::serial(), None, ServiceConfig::default(), plan)
            .unwrap();
    let golden = ExperimentService::new(ParallelExecutor::serial())
        .run_cells(&runner, std::slice::from_ref(&cell))
        .unwrap();
    let results = service.run_cells(&runner, std::slice::from_ref(&cell)).unwrap();
    assert_eq!(
        result_projection(&results[0]),
        result_projection(&golden[0]),
        "the post-retry result is bit-exact"
    );
    let stats = service.stats();
    assert_eq!(stats.worker_retries, 2);
    assert_eq!(stats.simulated, 1);
    assert_eq!(stats.failed, 0);
}

/// A cell that keeps panicking exhausts its retries and surfaces as a typed
/// `WorkerPanic` error — while its healthy siblings complete and cache.
#[test]
fn exhausted_panic_retries_surface_typed_and_spare_siblings() {
    let runner = smoke_runner();
    let poisoned = CellSpec::single("429.mcf", MechanismKind::Baseline, 1000);
    let healthy = CellSpec::single("429.mcf", MechanismKind::Comet, 1000);
    let plan = Arc::new(FaultPlan::new().panic_on(poisoned.label(), u32::MAX));
    let service =
        ExperimentService::with_fault_plan(ParallelExecutor::serial(), None, ServiceConfig::default(), plan)
            .unwrap();

    let error = service
        .run_cells(&runner, &[poisoned.clone(), healthy.clone()])
        .expect_err("the always-panicking cell must fail the batch");
    match error {
        RunnerError::WorkerPanic { label, attempts } => {
            assert_eq!(label, poisoned.label());
            assert_eq!(attempts, 3, "1 attempt + 2 retries");
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.simulated, 1, "the healthy sibling completed");
    assert_eq!(stats.worker_retries, 2);

    // The sibling is cached; only the poisoned cell is gone.
    service.run_cells(&runner, std::slice::from_ref(&healthy)).unwrap();
    assert_eq!(service.stats().cache_hits, 1);
}

/// The in-memory cache bound evicts least-recently-used cells instead of
/// growing without limit; evicted cells re-simulate on the next request.
#[test]
fn lru_eviction_respects_the_cell_bound() {
    let runner = smoke_runner();
    let cells = cells();
    let config = ServiceConfig { max_cached_cells: Some(2), ..ServiceConfig::default() };
    let service = ExperimentService::with_config(ParallelExecutor::serial(), None, config).unwrap();

    service.run_cells(&runner, &cells).unwrap();
    let stats = service.stats();
    assert_eq!(stats.simulated, 3);
    assert!(stats.evictions >= 1, "the third insert must evict");
    assert!(service.cached_cells() <= 2, "the bound holds");

    // The most recently completed cell is still cached; the oldest is not.
    service.run_cells(&runner, std::slice::from_ref(&cells[2])).unwrap();
    assert_eq!(service.stats().cache_hits, 1, "most-recent cell survives");
    service.run_cells(&runner, std::slice::from_ref(&cells[0])).unwrap();
    assert_eq!(service.stats().simulated, 4, "the evicted cell re-simulates");
}

/// Exceeding the segment bound triggers a compaction pass; the compacted
/// store reloads the same cells on restart.
#[test]
fn segment_bound_triggers_compaction_and_survives_restart() {
    let dir = temp_dir("compact");
    let _ = std::fs::remove_dir_all(&dir);
    let runner = smoke_runner();
    let cells = cells();
    {
        // max_segments 0: every append exceeds the bound, so every persist
        // compacts — the most aggressive (and deterministic) setting.
        let config = ServiceConfig { max_segments: Some(0), ..ServiceConfig::default() };
        let service =
            ExperimentService::with_config(ParallelExecutor::serial(), Some(dir.clone()), config).unwrap();
        service.run_cells(&runner, &cells).unwrap();
        let stats = service.stats();
        assert_eq!(stats.compactions, 3, "every persist compacted");
        assert!(!stats.degraded);
    }
    let segments: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
        .collect();
    assert_eq!(segments.len(), 1, "compaction keeps the directory at one live segment");

    let service = ExperimentService::with_cache_dir(ParallelExecutor::serial(), &dir).unwrap();
    assert_eq!(service.stats().loaded_from_disk, 3, "compaction loses nothing live");
    service.run_cells(&runner, &cells).unwrap();
    assert_eq!(service.stats().simulated, 0, "fully warm after compacted restart");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Admission control over the real Unix-socket daemon: with the one worker
/// held at the fault-plan gate and a queue bound of 1, a third concurrent
/// submit is shed with a typed `overloaded` reply (and counted), a queued
/// job is rejected cleanly with `shutting_down` at shutdown, and the
/// in-flight job still completes successfully.
#[cfg(unix)]
#[test]
fn flood_sheds_typed_overloaded_and_shutdown_drains_cleanly() {
    use comet_service::Daemon;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let dir = temp_dir("flood");
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("daemon.sock");

    let plan = Arc::new(FaultPlan::new());
    plan.hold_workers();
    let service = ExperimentService::with_fault_plan(
        ParallelExecutor::serial(),
        None,
        ServiceConfig::default(),
        plan.clone(),
    )
    .unwrap();
    let daemon = Arc::new(Daemon::with_queue_bound(Arc::new(service), 1, 1));
    let serving = {
        let daemon = daemon.clone();
        let socket = socket.clone();
        std::thread::spawn(move || daemon.serve_unix(&socket))
    };
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let submit = |id: u64| {
        let socket = socket.clone();
        std::thread::spawn(move || {
            let mut stream = UnixStream::connect(&socket).unwrap();
            writeln!(stream, "{{\"op\":\"run\",\"id\":{id},\"scope\":\"smoke\",\"targets\":[\"fig9\"]}}")
                .unwrap();
            let mut line = String::new();
            BufReader::new(stream).read_line(&mut line).unwrap();
            line
        })
    };

    // First submit: popped by the worker, which blocks at the plan's gate.
    let in_flight = submit(1);
    eprintln!("[flood] submitted 1, waiting for the worker to reach the gate");
    while plan.workers_held() == 0 {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    eprintln!("[flood] worker held at gate");
    // Second submit: queued (fills the bound-1 queue).
    let queued = submit(2);
    eprintln!("[flood] submitted 2, waiting for it to queue");
    while daemon.queued_jobs() < 1 {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    eprintln!("[flood] job 2 queued");
    // Third submit: the queue is full — shed immediately with a typed reply.
    let shed_reply = submit(3).join().unwrap();
    assert!(shed_reply.contains("\"overloaded\":true"), "{shed_reply}");
    assert!(shed_reply.contains("\"retry_after_ms\""), "{shed_reply}");
    assert!(shed_reply.contains("\"ok\":false"), "{shed_reply}");
    assert_eq!(daemon.service().stats().sheds, 1, "the shed is counted");

    // The daemon is still alive and answering inline ops under the flood.
    let mut ping = UnixStream::connect(&socket).unwrap();
    writeln!(ping, "{{\"op\":\"ping\",\"id\":9}}").unwrap();
    let mut pong = String::new();
    BufReader::new(ping).read_line(&mut pong).unwrap();
    assert!(pong.contains("\"pong\":true"), "{pong}");

    // Shutdown: the queued job is rejected cleanly, the in-flight one (once
    // the gate opens) completes with a real response.
    let mut stopper = UnixStream::connect(&socket).unwrap();
    writeln!(stopper, "{{\"op\":\"shutdown\",\"id\":10}}").unwrap();
    let mut ack = String::new();
    BufReader::new(stopper).read_line(&mut ack).unwrap();
    assert!(ack.contains("\"shutdown\":true"), "{ack}");

    let queued_reply = queued.join().unwrap();
    assert!(queued_reply.contains("\"shutting_down\":true"), "{queued_reply}");
    assert!(queued_reply.contains("\"id\":2"), "{queued_reply}");

    plan.release_workers();
    let in_flight_reply = in_flight.join().unwrap();
    assert!(in_flight_reply.contains("\"ok\":true"), "in-flight work finishes: {in_flight_reply}");
    assert!(in_flight_reply.contains("\"id\":1"), "{in_flight_reply}");

    serving.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
