//! Telemetry integration tests: the scrape must agree with `stats` on every
//! shared counter, the `metrics` protocol op must round-trip the exposition,
//! the HTTP endpoint must serve valid Prometheus text exposition, and
//! heartbeat-piggybacked worker snapshots must appear (and disappear) as
//! per-worker series.

#![cfg(unix)]

use comet_service::json;
use comet_service::protocol::{LineConn, LineEvent};
use comet_service::{Daemon, ExperimentService, Fleet, LeaseConfig, KEY_SCHEMA};
use comet_sim::experiments::{CellBackend, CellSpec, ParallelExecutor};
use comet_sim::{MechanismKind, Runner, SimConfig};
use serde::Value;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn smoke_cell() -> (Runner, CellSpec) {
    (Runner::new(SimConfig::quick_test()), CellSpec::single("429.mcf", MechanismKind::Baseline, 1000))
}

/// Finds `series` (exact series text, label block included) in an exposition
/// body and returns its value.
fn metric_value(exposition: &str, series: &str) -> Option<f64> {
    exposition.lines().find_map(|line| {
        let (name, value) = line.rsplit_once(' ')?;
        (name == series).then(|| value.parse().expect("metric values parse as f64"))
    })
}

#[test]
fn scrape_agrees_with_stats_on_every_shared_counter() {
    let service = ExperimentService::new(ParallelExecutor::new());
    let (runner, cell) = smoke_cell();
    // Two identical batches: the first simulates, the second is pure cache
    // hits, so both counter classes are non-trivially exercised.
    service.run_cells(&runner, &[cell.clone(), cell.clone()]).expect("first batch runs");
    service.run_cells(&runner, &[cell]).expect("second batch runs");

    let stats = service.stats();
    let scrape = service.render_metrics();
    let shared = [
        ("service_cells_requested_total", stats.cells_requested),
        ("service_cache_hits_total", stats.cache_hits),
        ("service_batch_shared_total", stats.batch_shared),
        ("service_simulated_total", stats.simulated),
        ("service_failed_total", stats.failed),
        ("service_evictions_total", stats.evictions),
        ("remote_cells_total", stats.remote_cells),
        ("service_local_fallbacks_total", stats.local_fallbacks),
    ];
    for (series, expected) in shared {
        assert_eq!(
            metric_value(&scrape, series),
            Some(expected as f64),
            "scrape and stats disagree on {series}\n{scrape}"
        );
    }
    assert!(stats.cache_hits > 0, "the second batch should have hit the cache");
    assert_eq!(metric_value(&scrape, "service_cached_cells"), Some(service.cached_cells() as f64));
    assert_eq!(metric_value(&scrape, "service_degraded"), Some(0.0));
    // The engine's process-global families ride along in the same scrape.
    assert!(scrape.contains("comet_engine_runs_total"), "no engine families in:\n{scrape}");
}

#[test]
fn the_metrics_op_round_trips_the_exposition() {
    let daemon = Daemon::new(Arc::new(ExperimentService::new(ParallelExecutor::new())), 1);
    let mut output = Vec::new();
    daemon
        .serve_session(std::io::BufReader::new("{\"op\":\"metrics\",\"id\":41}\n".as_bytes()), &mut output)
        .unwrap();
    let response = String::from_utf8(output).unwrap();
    let value = json::parse(response.trim()).expect("parseable response");
    assert_eq!(json::get(&value, "ok"), Some(&Value::Bool(true)));
    let exposition = json::get(&value, "exposition").and_then(json::as_str).expect("exposition field");
    assert!(exposition.contains("# TYPE service_cells_requested_total counter"), "{exposition}");
    assert!(exposition.contains("service_cells_requested_total 0"), "{exposition}");
}

fn read_line(conn: &mut LineConn<TcpStream>) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match conn.read_event().expect("socket read") {
            LineEvent::Line(line) => return line,
            LineEvent::TimedOut => {
                assert!(Instant::now() < deadline, "timed out waiting for a response line");
            }
            LineEvent::Eof { partial } => panic!("connection closed (partial: {partial:?})"),
        }
    }
}

/// One protocol round-trip over a fresh TCP connection.
fn client_request(addr: &str, line: &str) -> String {
    let stream = TcpStream::connect(addr).expect("connect to the daemon");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut conn = LineConn::new(stream);
    conn.write_line(line).unwrap();
    read_line(&mut conn)
}

/// One HTTP scrape: sends a GET request and returns (head, body).
fn scrape_http(addr: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to the metrics endpoint");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(stream, "GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read the full response");
    let (head, body) = response.split_once("\r\n\r\n").expect("an HTTP head/body split");
    (head.to_string(), body.to_string())
}

#[test]
fn the_http_endpoint_serves_prometheus_text_exposition() {
    let service = Arc::new(ExperimentService::new(ParallelExecutor::new()));
    let daemon =
        Daemon::with_queue_bound(service, 1, 64).with_fleet(Arc::new(Fleet::new(LeaseConfig::default())));
    let protocol_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let protocol_addr = protocol_listener.local_addr().unwrap().to_string();
    let metrics_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let metrics_addr = metrics_listener.local_addr().unwrap().to_string();
    let daemon = &daemon;
    std::thread::scope(|scope| {
        let serving = scope
            .spawn(move || daemon.serve_listeners(None, Some(protocol_listener), Some(metrics_listener)));

        let (head, body) = scrape_http(&metrics_addr);
        assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
        assert!(head.contains("Content-Type: text/plain; version=0.0.4"), "{head}");
        assert!(body.contains("# TYPE service_cells_requested_total counter"), "{body}");
        assert!(body.contains("# TYPE fleet_workers_live gauge"), "{body}");
        assert_eq!(metric_value(&body, "fleet_workers_live"), Some(0.0));

        // A worker registers and heartbeats with a piggybacked snapshot:
        // its per-worker series appear in the next scrape...
        let stream = TcpStream::connect(&protocol_addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut worker = LineConn::new(stream);
        worker
            .write_line(&format!(
                "{{\"op\":\"register\",\"id\":1,\"threads\":1,\"schema\":\"{KEY_SCHEMA}\"}}"
            ))
            .unwrap();
        let registered = json::parse(&read_line(&mut worker)).unwrap();
        let worker_id = json::get(&registered, "worker").and_then(json::as_u64).expect("a worker id");
        worker
            .write_line(&format!(
                "{{\"op\":\"heartbeat\",\"id\":2,\"worker\":{worker_id},\"cells\":17,\"busy\":true}}"
            ))
            .unwrap();
        assert!(read_line(&mut worker).contains("\"live\":true"));

        let (_, body) = scrape_http(&metrics_addr);
        let cells_series = format!("worker_cells_total{{worker=\"{worker_id}\"}}");
        let busy_series = format!("worker_busy{{worker=\"{worker_id}\"}}");
        assert_eq!(metric_value(&body, &cells_series), Some(17.0), "{body}");
        assert_eq!(metric_value(&body, &busy_series), Some(1.0), "{body}");
        assert_eq!(metric_value(&body, "fleet_workers_live"), Some(1.0), "{body}");

        // ...and vanish when its connection drops (the coordinator treats
        // that as a crash; stale series must not linger in the scrape).
        drop(worker);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (_, body) = scrape_http(&metrics_addr);
            if metric_value(&body, &cells_series).is_none()
                && metric_value(&body, "fleet_workers_live") == Some(0.0)
            {
                break;
            }
            assert!(Instant::now() < deadline, "worker series still present:\n{body}");
            std::thread::sleep(Duration::from_millis(25));
        }

        let response = client_request(&protocol_addr, "{\"op\":\"shutdown\",\"id\":99}");
        assert!(response.contains("\"shutdown\":true"), "{response}");
        serving.join().unwrap().unwrap();
    });
}
