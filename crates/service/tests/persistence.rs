//! Persistence suite: write segments, restart the service, and prove the
//! reloaded cache serves the same bits without re-simulating.

use comet_service::store::result_projection;
use comet_service::ExperimentService;
use comet_sim::experiments::{CellBackend, CellSpec, ExperimentScope, ParallelExecutor};
use comet_sim::{MechanismKind, Runner};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("comet-service-{tag}-{}-{unique}", std::process::id()))
}

fn smoke_runner() -> Runner {
    Runner::new(ExperimentScope::Smoke.sim_config())
}

fn cells() -> Vec<CellSpec> {
    vec![
        CellSpec::single("429.mcf", MechanismKind::Baseline, 1000),
        CellSpec::single("429.mcf", MechanismKind::Comet, 1000),
        CellSpec::single("bfs_ny", MechanismKind::Comet, 125),
    ]
}

#[test]
fn cache_survives_a_service_restart() {
    let dir = temp_dir("restart");
    let _ = std::fs::remove_dir_all(&dir);
    let runner = smoke_runner();
    let cells = cells();

    // First service lifetime: simulate and persist.
    let first_projections: Vec<String> = {
        let service = ExperimentService::with_cache_dir(ParallelExecutor::new(), &dir).unwrap();
        let results = service.run_cells(&runner, &cells).unwrap();
        assert_eq!(service.stats().simulated, cells.len() as u64);
        results.iter().map(result_projection).collect()
    };

    // Second lifetime: the segments are streamed back in, and the same
    // request is served entirely from the reloaded cache.
    let service = ExperimentService::with_cache_dir(ParallelExecutor::new(), &dir).unwrap();
    let stats = service.stats();
    assert_eq!(stats.loaded_from_disk, cells.len() as u64, "every persisted cell reloads");
    let results = service.run_cells(&runner, &cells).unwrap();
    let warm = service.stats();
    assert_eq!(warm.simulated, 0, "a restarted warm service must not re-simulate");
    assert_eq!(warm.cache_hits, cells.len() as u64);
    for (projection, result) in first_projections.iter().zip(&results) {
        assert_eq!(projection, &result_projection(result), "persisted results round-trip bit-exactly");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_only_accelerates_matching_identities() {
    let dir = temp_dir("identity");
    let _ = std::fs::remove_dir_all(&dir);
    let cell = CellSpec::single("473.astar", MechanismKind::Baseline, 1000);
    {
        let service = ExperimentService::with_cache_dir(ParallelExecutor::new(), &dir).unwrap();
        service.run_cells(&smoke_runner(), std::slice::from_ref(&cell)).unwrap();
    }
    let service = ExperimentService::with_cache_dir(ParallelExecutor::new(), &dir).unwrap();
    assert_eq!(service.stats().loaded_from_disk, 1);
    // A different seed misses even though the spec matches.
    let other = Runner::with_seed(ExperimentScope::Smoke.sim_config(), 99);
    service.run_cells(&other, std::slice::from_ref(&cell)).unwrap();
    assert_eq!(service.stats().simulated, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persisted_segments_append_across_lifetimes() {
    let dir = temp_dir("append");
    let _ = std::fs::remove_dir_all(&dir);
    let runner = smoke_runner();
    let first = CellSpec::single("429.mcf", MechanismKind::Baseline, 1000);
    let second = CellSpec::single("473.astar", MechanismKind::Baseline, 1000);
    {
        let service = ExperimentService::with_cache_dir(ParallelExecutor::new(), &dir).unwrap();
        service.run_cells(&runner, std::slice::from_ref(&first)).unwrap();
    }
    {
        let service = ExperimentService::with_cache_dir(ParallelExecutor::new(), &dir).unwrap();
        service.run_cells(&runner, std::slice::from_ref(&second)).unwrap();
        assert_eq!(service.stats().simulated, 1, "only the new cell simulates");
    }
    let service = ExperimentService::with_cache_dir(ParallelExecutor::new(), &dir).unwrap();
    assert_eq!(service.stats().loaded_from_disk, 2, "both lifetimes' cells persist");
    let _ = std::fs::remove_dir_all(&dir);
}
