//! Cache-semantics suite: hit / miss / in-flight dedup, overlapping-sweep
//! novelty, error paths, and the bit-exactness of cached results against
//! fresh `Runner` results for the same key.

use comet_service::store::result_projection;
use comet_service::ExperimentService;
use comet_sim::experiments::adversarial::AdversarialPlan;
use comet_sim::experiments::{CellBackend, CellSpec, ExperimentScope, ParallelExecutor};
use comet_sim::{MechanismKind, Runner, RunnerError, SimConfig};
use comet_trace::AttackKind;

fn service() -> ExperimentService {
    ExperimentService::new(ParallelExecutor::new())
}

fn smoke_runner() -> Runner {
    Runner::new(ExperimentScope::Smoke.sim_config())
}

fn small_grid() -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for workload in ["429.mcf", "473.astar", "bfs_ny"] {
        for mechanism in [MechanismKind::Baseline, MechanismKind::Comet] {
            cells.push(CellSpec::single(workload, mechanism, 1000));
        }
    }
    cells
}

#[test]
fn identical_sweep_resubmission_is_served_entirely_from_cache() {
    let service = service();
    let runner = smoke_runner();
    let cells = small_grid();

    let first = service.run_cells(&runner, &cells).unwrap();
    let cold = service.stats();
    assert_eq!(cold.simulated, cells.len() as u64, "cold run simulates every cell");
    assert_eq!(cold.cache_hits, 0);

    let second = service.run_cells(&runner, &cells).unwrap();
    let warm = service.stats().delta_since(&cold);
    // The acceptance property: zero simulations, hit counter == cell count.
    assert_eq!(warm.simulated, 0, "warm resubmission must not simulate");
    assert_eq!(warm.cache_hits, cells.len() as u64);
    assert_eq!(warm.cells_requested, cells.len() as u64);

    for (a, b) in first.iter().zip(&second) {
        assert_eq!(result_projection(a), result_projection(b), "cached results are bit-identical");
    }
}

#[test]
fn overlapping_sweeps_rerun_only_their_novel_cells() {
    // The adversarial grid shares attacked baselines between studies: after a
    // CoMeT-only request, a CoMeT+Hydra request must only simulate Hydra's
    // protected runs (the baselines and CoMeT runs are warm).
    let service = service();
    let runner = smoke_runner();
    let workloads: Vec<String> = vec!["429.mcf".to_string(), "473.astar".to_string()];
    let attack = AttackKind::Traditional { rows_per_bank: 8 };

    let comet_only = AdversarialPlan::new(workloads.clone(), &[(MechanismKind::Comet, attack, 500)]);
    service.run_cells(&runner, comet_only.cells()).unwrap();
    let after_first = service.stats();
    assert_eq!(after_first.simulated, 2 * workloads.len() as u64, "baselines + CoMeT runs");

    let both = AdversarialPlan::new(
        workloads.clone(),
        &[(MechanismKind::Comet, attack, 500), (MechanismKind::Hydra, attack, 500)],
    );
    // The plan enumerates the shared baseline twice (once per study) and the
    // warm CoMeT cells again; only Hydra's runs are novel.
    service.run_cells(&runner, both.cells()).unwrap();
    let delta = service.stats().delta_since(&after_first);
    assert_eq!(delta.simulated, workloads.len() as u64, "only the novel Hydra cells simulate");
    assert_eq!(delta.cells_requested, both.cells().len() as u64);
    assert!(delta.batch_shared >= workloads.len() as u64, "duplicate baselines shared in-batch");
}

#[test]
fn concurrent_identical_requests_dedup_in_flight() {
    let service = service();
    let runner = smoke_runner();
    let cells = small_grid();

    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| service.run_cells(&runner, &cells).unwrap());
        }
    });
    let stats = service.stats();
    assert_eq!(
        stats.simulated,
        cells.len() as u64,
        "four concurrent identical requests must simulate each unique cell exactly once"
    );
    assert_eq!(stats.cells_requested, 4 * cells.len() as u64);
    assert_eq!(stats.failed, 0);
}

#[test]
fn cached_results_equal_fresh_runner_results_bit_exactly() {
    let service = service();
    let runner = smoke_runner();
    let cell = CellSpec::single("462.libquantum", MechanismKind::Comet, 125);

    let via_service = service.run_cells(&runner, std::slice::from_ref(&cell)).unwrap();
    let cached = service.run_cells(&runner, std::slice::from_ref(&cell)).unwrap();
    let fresh = cell.run(&runner).unwrap();

    let expected = result_projection(&fresh);
    assert_eq!(result_projection(&via_service[0]), expected);
    assert_eq!(result_projection(&cached[0]), expected);
    assert_eq!(service.stats().simulated, 1);
}

#[test]
fn failed_cells_report_errors_without_poisoning_the_cache() {
    let service = service();
    let runner = smoke_runner();
    let good = CellSpec::single("429.mcf", MechanismKind::Baseline, 1000);
    let bad = CellSpec::single("no-such-workload", MechanismKind::Baseline, 1000);

    let error = service.run_cells(&runner, &[good.clone(), bad.clone()]).unwrap_err();
    assert_eq!(error, RunnerError::UnknownWorkload("no-such-workload".to_string()));
    let stats = service.stats();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.simulated, 1, "the good sibling still completed and cached");

    // The good cell is warm; the bad cell fails again (it was released, not cached).
    let error = service.run_cells(&runner, &[good, bad]).unwrap_err();
    assert_eq!(error, RunnerError::UnknownWorkload("no-such-workload".to_string()));
    let delta = service.stats().delta_since(&stats);
    assert_eq!(delta.cache_hits, 1);
    assert_eq!(delta.simulated, 0);
    assert_eq!(delta.failed, 1);
}

#[test]
fn different_runner_identities_never_share_cells() {
    let service = service();
    let cell = CellSpec::single("429.mcf", MechanismKind::Baseline, 1000);
    let base = Runner::new(SimConfig::quick_test());
    let other_seed = Runner::with_seed(SimConfig::quick_test(), 7);

    service.run_cells(&base, std::slice::from_ref(&cell)).unwrap();
    service.run_cells(&other_seed, std::slice::from_ref(&cell)).unwrap();
    assert_eq!(service.stats().simulated, 2, "a different seed is a different cell identity");
}
