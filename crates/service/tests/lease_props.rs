//! Property tests for the pure lease state machine ([`LeaseTable`]).
//!
//! Each case drives a table with a random interleaving of the fleet's
//! operations — register, submit, dispatch, heartbeat, complete, disconnect,
//! tick, clock advance — then drains whatever is left with a fresh worker,
//! and asserts the two safety properties the coordinator is built on:
//!
//! * **exactly-once from the cache's point of view**: every submitted cell
//!   ends in exactly one authoritative `Accepted` completion or exactly one
//!   `Exhausted` event — never both, never twice, never lost — and every
//!   completion report after that is `Stale`;
//! * **bounded redelivery**: no dispatch or requeue ever exceeds the
//!   configured `max_redeliveries`, and a cell is only exhausted at exactly
//!   that budget.

use comet_service::{CellKey, CompleteOutcome, JobEvent, LeaseConfig, LeaseTable};
use proptest::prelude::*;
use std::collections::HashMap;

const KEY_POOL: u128 = 6;
const WORKER_POOL: u64 = 4;

/// Per-key lifecycle bookkeeping mirrored outside the table: what the cache
/// layer would have observed.
#[derive(Default, Clone, Copy, Debug)]
struct KeyLog {
    submitted: bool,
    accepted: u32,
    exhausted: u32,
}

struct Harness {
    table: LeaseTable,
    now_ms: u64,
    /// Worker ids ever registered (some may be dead — feeding dead ids back
    /// in is part of the point).
    workers: Vec<u64>,
    log: HashMap<CellKey, KeyLog>,
}

impl Harness {
    fn new(config: LeaseConfig) -> Self {
        Harness { table: LeaseTable::new(config), now_ms: 0, workers: Vec::new(), log: HashMap::new() }
    }

    fn max_redeliveries(&self) -> u32 {
        self.table.config().max_redeliveries
    }

    fn key(&self, selector: u128) -> CellKey {
        CellKey(0xfee1_0000 + selector % KEY_POOL)
    }

    /// A key is live while the table tracks it; once accepted or exhausted
    /// its lifecycle is over and we never resubmit it, so "exactly once"
    /// stays meaningful.
    fn finished(&self, key: CellKey) -> bool {
        let log = self.log.get(&key).copied().unwrap_or_default();
        log.accepted + log.exhausted > 0
    }

    fn absorb_events(&mut self, events: Vec<JobEvent>) {
        let budget = self.max_redeliveries();
        for event in events {
            match event {
                JobEvent::Requeued { key, redeliveries } => {
                    prop_assert!(
                        redeliveries <= budget,
                        "requeued {key} at {redeliveries} redeliveries, budget {budget}"
                    );
                    prop_assert!(self.table.contains(key), "a requeued cell must stay tracked");
                }
                JobEvent::Exhausted { key, redeliveries } => {
                    prop_assert_eq!(redeliveries, budget, "a cell must only exhaust at exactly the budget");
                    prop_assert!(!self.table.contains(key), "an exhausted cell must be dropped");
                    self.log.entry(key).or_default().exhausted += 1;
                }
            }
        }
    }

    fn apply(&mut self, op: u64) {
        let worker = self.workers.get((op >> 8) as usize % WORKER_POOL.max(1) as usize).copied();
        let key = self.key((op >> 16) as u128);
        match op % 8 {
            0 => {
                if (self.workers.len() as u64) < WORKER_POOL {
                    let id = self.table.register(1 + (op >> 8) as usize % 4, self.now_ms);
                    self.workers.push(id);
                }
            }
            1 => {
                if !self.finished(key) {
                    self.table.submit(key);
                    self.log.entry(key).or_default().submitted = true;
                }
            }
            2 => {
                if let Some(worker) = worker {
                    if let Some((_, redeliveries)) = self.table.dispatch(worker, self.now_ms) {
                        prop_assert!(
                            redeliveries <= self.max_redeliveries(),
                            "dispatched at {redeliveries} redeliveries"
                        );
                    }
                }
            }
            3 => {
                if let Some(worker) = worker {
                    self.table.heartbeat(worker, self.now_ms);
                }
            }
            4 => {
                if let Some(worker) = worker {
                    let outcome = self.table.complete(worker, key, self.now_ms);
                    if outcome == CompleteOutcome::Accepted {
                        self.log.entry(key).or_default().accepted += 1;
                    }
                }
            }
            5 => {
                if let Some(worker) = worker {
                    let events = self.table.disconnect(worker);
                    self.workers.retain(|&w| w != worker);
                    self.absorb_events(events);
                }
            }
            6 => {
                let events = self.table.tick(self.now_ms);
                // `tick` may deregister silently-dead workers; drop stale
                // ids so registration slots free up (keeping some stale ids
                // around is fine too — ops on them are no-ops by contract).
                let table = &self.table;
                self.workers.retain(|&w| table.worker_threads(w).is_some());
                self.absorb_events(events);
            }
            _ => {
                self.now_ms += (op >> 24) % 700;
            }
        }
        self.check_invariants()
    }

    fn check_invariants(&self) {
        let counters = self.table.counters();
        // Every expiry either requeues or exhausts — nothing else.
        prop_assert_eq!(
            counters.leases_expired,
            counters.redeliveries + counters.exhausted,
            "expiries must partition into requeues and exhaustions"
        );
        for (&key, log) in &self.log {
            prop_assert!(
                log.accepted + log.exhausted <= 1,
                "{key} resolved {} times (accepted {}, exhausted {})",
                log.accepted + log.exhausted,
                log.accepted,
                log.exhausted
            );
            if log.accepted + log.exhausted > 0 {
                prop_assert!(!self.table.contains(key), "{key} resolved but the table still tracks it");
            }
        }
    }

    /// Deterministically finishes every still-tracked cell: one fresh worker
    /// dispatches and completes until the table is empty, with periodic
    /// heartbeats so its own leases never expire.
    fn drain_remaining(&mut self) {
        let finisher = self.table.register(1, self.now_ms);
        let mut steps = 0u32;
        while self.table.pending() > 0 || self.table.leased() > 0 {
            steps += 1;
            prop_assert!(steps < 10_000, "drain phase failed to converge");
            self.now_ms += 1;
            let events = self.table.tick(self.now_ms);
            self.absorb_events(events);
            self.table.heartbeat(finisher, self.now_ms);
            if let Some((key, redeliveries)) = self.table.dispatch(finisher, self.now_ms) {
                prop_assert!(redeliveries <= self.max_redeliveries());
                let outcome = self.table.complete(finisher, key, self.now_ms);
                prop_assert_eq!(
                    outcome,
                    CompleteOutcome::Accepted,
                    "the live lease holder's report must be authoritative"
                );
                self.log.entry(key).or_default().accepted += 1;
            }
            self.check_invariants();
        }
    }
}

proptest! {
    /// The headline safety property: under arbitrary interleavings of the
    /// fleet's operations, every submitted cell resolves exactly once
    /// (accepted or exhausted), redelivery never exceeds its budget, and
    /// post-resolution completion reports are stale.
    #[test]
    fn every_cell_resolves_exactly_once_with_bounded_redelivery(
        ops in proptest::collection::vec(any::<u64>(), 20..400),
        lease_timeout_ms in 50u64..1500,
        max_redeliveries in 0u32..5,
    ) {
        let mut harness = Harness::new(LeaseConfig { lease_timeout_ms, max_redeliveries });
        for op in ops {
            harness.apply(op);
        }
        harness.drain_remaining();

        for (&key, log) in &harness.log {
            if log.submitted {
                prop_assert_eq!(
                    log.accepted + log.exhausted, 1,
                    "{} must resolve exactly once (accepted {}, exhausted {})",
                    key, log.accepted, log.exhausted
                );
            }
            // A resolved cell's key is gone: any further report is stale.
            let worker = harness.table.register(1, harness.now_ms);
            prop_assert_eq!(
                harness.table.complete(worker, key, harness.now_ms),
                CompleteOutcome::Stale,
                "a post-resolution completion must be refused as stale"
            );
        }
        let counters = harness.table.counters();
        prop_assert_eq!(counters.leases_expired, counters.redeliveries + counters.exhausted);
    }

    /// Dropping every connection a cell is ever leased on must exhaust it
    /// after exactly `max_redeliveries` requeues — never an endless loop.
    #[test]
    fn repeated_disconnects_exhaust_at_exactly_the_budget(
        max_redeliveries in 0u32..6,
        threads in 1usize..8,
    ) {
        let mut table = LeaseTable::new(LeaseConfig { lease_timeout_ms: 1_000, max_redeliveries });
        let key = CellKey(0xdead_beef);
        table.submit(key);
        let mut requeues = 0u32;
        loop {
            let worker = table.register(threads, 0);
            let (leased, redeliveries) = table.dispatch(worker, 0).expect("the cell is pending");
            prop_assert_eq!(leased, key);
            prop_assert_eq!(redeliveries, requeues);
            let events = table.disconnect(worker);
            prop_assert_eq!(events.len(), 1);
            match events.into_iter().next().unwrap() {
                JobEvent::Requeued { redeliveries, .. } => {
                    requeues += 1;
                    prop_assert_eq!(redeliveries, requeues);
                    prop_assert!(requeues <= max_redeliveries, "requeued past the budget");
                }
                JobEvent::Exhausted { redeliveries, .. } => {
                    prop_assert_eq!(redeliveries, max_redeliveries);
                    prop_assert_eq!(requeues, max_redeliveries);
                    break;
                }
            }
        }
        prop_assert!(!table.contains(key));
        prop_assert_eq!(table.counters().exhausted, 1);
        prop_assert_eq!(table.counters().leases_expired, u64::from(max_redeliveries) + 1);
    }
}
