//! End-to-end fleet tests over real TCP sockets: a coordinator daemon, real
//! and hand-driven workers, and the failure matrix the fleet is built for —
//! worker death mid-cell, lease expiry with duplicate completions, spent
//! redelivery budgets, degradation to local execution, and shutdown drain.
//!
//! Hand-driven workers ([`ManualWorker`]) speak the wire protocol directly
//! so the tests control exactly when a worker pulls, heartbeats, completes,
//! or vanishes; real workers ([`comet_service::run_worker`]) exercise the
//! production reconnect/heartbeat machinery plus the scripted fault hooks.

#![cfg(unix)]

use comet_service::json;
use comet_service::protocol::{LineConn, LineEvent};
use comet_service::store::result_projection;
use comet_service::{
    run_worker, Daemon, ExperimentService, FaultPlan, Fleet, LeaseConfig, WorkerConfig, KEY_SCHEMA,
};
use comet_sim::experiments::{CellBackend, CellSpec, ParallelExecutor};
use comet_sim::{MechanismKind, Runner, RunnerError, SimConfig};
use serde::{Serialize, Value};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn smoke_cell() -> (Runner, CellSpec) {
    (Runner::new(SimConfig::quick_test()), CellSpec::single("429.mcf", MechanismKind::Baseline, 1000))
}

fn value_to_string(value: &Value) -> String {
    struct W(Value);
    impl Serialize for W {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    serde_json::to_string(&W(value.clone())).expect("value-tree serialization cannot fail")
}

fn wait_until(what: &str, timeout_ms: u64, mut check: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_millis(timeout_ms);
    while !check() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Starts a coordinator daemon on an ephemeral TCP port, runs `body`, then
/// shuts the daemon down over the wire and joins its serving thread.
fn with_fleet_daemon(lease: LeaseConfig, body: impl FnOnce(&Daemon, &str)) {
    let service = Arc::new(ExperimentService::new(ParallelExecutor::new()));
    let daemon = Daemon::with_queue_bound(service, 1, 64).with_fleet(Arc::new(Fleet::new(lease)));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().unwrap().to_string();
    let daemon = &daemon;
    std::thread::scope(|scope| {
        let serving = scope.spawn(move || daemon.serve_listeners(None, Some(listener), None));
        // A panicking body must still shut the daemon down, or joining the
        // serving thread would hang the whole test binary.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(daemon, &addr)));
        if !daemon.is_shutdown() {
            let response = client_request(&addr, "{\"op\":\"shutdown\",\"id\":999}");
            if outcome.is_ok() {
                assert!(response.contains("\"shutdown\":true"), "{response}");
            }
        }
        serving.join().unwrap().unwrap();
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
    });
}

/// One client round-trip over a fresh TCP connection.
fn client_request(addr: &str, line: &str) -> String {
    let stream = TcpStream::connect(addr).expect("connect to the daemon");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut conn = LineConn::new(stream);
    conn.write_line(line).unwrap();
    read_line(&mut conn)
}

fn read_line(conn: &mut LineConn<TcpStream>) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match conn.read_event().expect("socket read") {
            LineEvent::Line(line) => return line,
            LineEvent::TimedOut => {
                assert!(Instant::now() < deadline, "timed out waiting for a response line");
            }
            LineEvent::Eof { partial } => panic!("connection closed (partial: {partial:?})"),
        }
    }
}

/// A hand-driven fleet worker: registers over TCP and exposes the wire ops
/// as methods, so tests script exact interleavings. Dropping it closes the
/// connection — to the coordinator, that is a worker crash.
struct ManualWorker {
    conn: LineConn<TcpStream>,
    worker: u64,
    next_id: u64,
}

impl ManualWorker {
    fn connect(addr: &str) -> Self {
        Self::try_connect(addr, KEY_SCHEMA).expect("registration accepted")
    }

    fn try_connect(addr: &str, schema: &str) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).expect("connect to the coordinator");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.set_nodelay(true).ok();
        let mut conn = LineConn::new(stream);
        conn.write_line(&format!("{{\"op\":\"register\",\"id\":1,\"threads\":1,\"schema\":\"{schema}\"}}"))
            .unwrap();
        let value = json::parse(&read_line(&mut conn)).expect("parseable response");
        if json::get(&value, "ok") != Some(&Value::Bool(true)) {
            return Err(json::get(&value, "error")
                .and_then(json::as_str)
                .unwrap_or("registration refused")
                .to_string());
        }
        let worker = json::get(&value, "worker").and_then(json::as_u64).expect("worker id");
        assert!(
            json::get(&value, "lease_timeout_ms").and_then(json::as_u64).is_some(),
            "registration advertises the lease timeout"
        );
        Ok(ManualWorker { conn, worker, next_id: 2 })
    }

    fn request(&mut self, line: &str) -> Value {
        self.conn.write_line(line).unwrap();
        json::parse(&read_line(&mut self.conn)).expect("parseable response")
    }

    fn pull(&mut self, wait_ms: u64) -> Option<(String, u64, Value)> {
        let id = self.next_id;
        self.next_id += 1;
        let worker = self.worker;
        let response = self
            .request(&format!("{{\"op\":\"pull\",\"id\":{id},\"worker\":{worker},\"wait_ms\":{wait_ms}}}"));
        assert_eq!(json::get(&response, "ok"), Some(&Value::Bool(true)), "{response:?}");
        let job = json::get(&response, "job").expect("pull responses carry a job field");
        if matches!(job, Value::Null) {
            return None;
        }
        let key = json::get(job, "key").and_then(json::as_str).expect("job key").to_string();
        let redeliveries = json::get(job, "redeliveries").and_then(json::as_u64).expect("redelivery count");
        let payload = json::get(job, "payload").expect("job payload").clone();
        Some((key, redeliveries, payload))
    }

    /// Pulls until a job arrives (bounded), re-polling the coordinator.
    fn pull_job(&mut self, what: &str) -> (String, u64, Value) {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(job) = self.pull(200) {
                return job;
            }
            assert!(Instant::now() < deadline, "timed out pulling {what}");
        }
    }

    fn heartbeat(&mut self) -> bool {
        let id = self.next_id;
        self.next_id += 1;
        let worker = self.worker;
        let response = self.request(&format!("{{\"op\":\"heartbeat\",\"id\":{id},\"worker\":{worker}}}"));
        json::get(&response, "live") == Some(&Value::Bool(true))
    }

    fn complete(&mut self, key: &str, result_json: &str) -> bool {
        let id = self.next_id;
        self.next_id += 1;
        let worker = self.worker;
        let response = self.request(&format!(
            "{{\"op\":\"complete\",\"id\":{id},\"worker\":{worker},\"key\":\"{key}\",\"result\":{result_json}}}"
        ));
        json::get(&response, "accepted") == Some(&Value::Bool(true))
    }
}

/// Simulates a pulled job's payload the way a real worker does and returns
/// the result projection to report back.
fn simulate_payload(payload: &Value) -> String {
    let text = value_to_string(payload);
    let job = comet_service::wire::decode_job(&text).expect("payload decodes");
    let result = job.cell.run(&job.runner).expect("cell simulates");
    result_projection(&result)
}

/// The tentpole end-to-end path: a real `run_worker` over TCP completes a
/// cell submitted through the service, and the remote result is bit-exact
/// with a single-node run of the same cell.
#[test]
fn a_remote_worker_completes_cells_bit_exact_with_single_node() {
    let (runner, cell) = smoke_cell();
    let local = cell.run(&runner).unwrap();
    let cells = vec![cell];
    with_fleet_daemon(LeaseConfig::default(), |daemon, addr| {
        let stop = Arc::new(AtomicBool::new(false));
        let config = WorkerConfig { addr: addr.to_string(), identity: 7, ..WorkerConfig::default() };
        std::thread::scope(|scope| {
            let worker = scope.spawn(|| run_worker(&config, &stop));
            wait_until("worker registration", 5_000, || daemon.fleet().unwrap().stats().workers_live == 1);
            let results = daemon.service().run_cells(&runner, &cells).unwrap();
            assert_eq!(
                result_projection(&results[0]),
                result_projection(&local),
                "remote completion must be bit-exact with a single-node run"
            );
            let stats = daemon.service().stats();
            assert_eq!(stats.remote_cells, 1);
            assert_eq!(stats.local_fallbacks, 0);
            assert_eq!(stats.workers_live, 1);
            assert_eq!(stats.leases_expired, 0);
            stop.store(true, Ordering::Release);
            let report = worker.join().unwrap().unwrap();
            assert_eq!(report.completed, 1);
            assert_eq!(report.failed, 0);
            assert_eq!(report.stale, 0);
        });
    });
}

/// Failover: a worker that dies mid-cell (scripted crash, connection drops)
/// loses its lease immediately, and the cell completes on another worker —
/// bit-exact, with the reassignment visible in the stats.
#[test]
fn a_killed_workers_cell_completes_on_another_worker() {
    let (runner, cell) = smoke_cell();
    let local = cell.run(&runner).unwrap();
    let label = cell.label();
    let cells = vec![cell.clone()];
    // Long lease: the test must pass because the *connection drop* expires
    // the lease, not because a timeout happened to elapse.
    let lease = LeaseConfig { lease_timeout_ms: 10_000, max_redeliveries: 3 };
    with_fleet_daemon(lease, |daemon, addr| {
        let stop = Arc::new(AtomicBool::new(false));
        let faults = Arc::new(FaultPlan::new().die_on_cell(&label, 1));
        let config = WorkerConfig {
            addr: addr.to_string(),
            identity: 13,
            faults: Some(faults),
            ..WorkerConfig::default()
        };
        std::thread::scope(|scope| {
            let dying = scope.spawn(|| run_worker(&config, &stop));
            wait_until("dying worker registration", 5_000, || {
                daemon.fleet().unwrap().stats().workers_live == 1
            });
            // The survivor registers before the victim dies, so the fleet
            // never hits zero workers (which would degrade to local).
            let mut survivor = ManualWorker::connect(addr);
            let run = scope.spawn(|| daemon.service().run_cells(&runner, &cells));
            let report = dying.join().unwrap().unwrap();
            assert!(report.died_on_cell, "the scripted fault must have fired");
            let (key, redeliveries, payload) = survivor.pull_job("the requeued cell");
            assert!(redeliveries >= 1, "the cell must arrive as a redelivery");
            assert!(survivor.complete(&key, &simulate_payload(&payload)));
            let results = run.join().unwrap().unwrap();
            assert_eq!(
                result_projection(&results[0]),
                result_projection(&local),
                "the failed-over completion must be bit-exact with a single-node run"
            );
            let stats = daemon.service().stats();
            assert!(stats.leases_expired >= 1, "stats: {stats:?}");
            assert!(stats.redeliveries >= 1, "stats: {stats:?}");
            assert_eq!(stats.remote_cells, 1);
            assert_eq!(stats.local_fallbacks, 0);
        });
    });
}

/// At-least-once delivery produces duplicates by design; the coordinator
/// must absorb them: after a lease expires and the cell completes elsewhere,
/// the original worker's late completion is refused as stale.
#[test]
fn duplicate_completions_after_lease_expiry_are_absorbed() {
    let (runner, cell) = smoke_cell();
    let cells = vec![cell];
    let lease = LeaseConfig { lease_timeout_ms: 400, max_redeliveries: 3 };
    with_fleet_daemon(lease, |daemon, addr| {
        std::thread::scope(|scope| {
            let mut sleeper = ManualWorker::connect(addr);
            let mut survivor = ManualWorker::connect(addr);
            let run = scope.spawn(|| daemon.service().run_cells(&runner, &cells));
            // The sleeper takes the lease, simulates the cell... and stalls
            // without heartbeating. Its connection stays open.
            let (sleeper_key, _, sleeper_payload) = sleeper.pull_job("the first delivery");
            let sleeper_result = simulate_payload(&sleeper_payload);
            // The survivor heartbeats (staying live) until the sleeper's
            // lease expires and the cell is redelivered to it.
            let deadline = Instant::now() + Duration::from_secs(10);
            let (key, redeliveries, payload) = loop {
                assert!(survivor.heartbeat(), "the survivor must stay registered");
                if let Some(job) = survivor.pull(100) {
                    break job;
                }
                assert!(Instant::now() < deadline, "timed out waiting for the redelivery");
            };
            assert_eq!(key, sleeper_key, "the same cell must be redelivered");
            assert!(redeliveries >= 1);
            assert!(survivor.complete(&key, &simulate_payload(&payload)));
            let results = run.join().unwrap().unwrap();
            assert!(!results.is_empty());
            // The sleeper wakes up and reports late: refused, not absorbed
            // twice.
            assert!(
                !sleeper.complete(&sleeper_key, &sleeper_result),
                "a post-expiry duplicate completion must be refused as stale"
            );
            let stats = daemon.service().stats();
            assert!(stats.stale_completions >= 1, "stats: {stats:?}");
            assert!(stats.leases_expired >= 1, "stats: {stats:?}");
            assert_eq!(stats.remote_cells, 1);
        });
    });
}

/// A cell whose every lease dies exhausts its redelivery budget and surfaces
/// as the typed `LeaseExhausted` error — never an infinite redispatch loop.
#[test]
fn a_spent_redelivery_budget_is_a_typed_lease_exhausted_error() {
    let (runner, cell) = smoke_cell();
    let cells = vec![cell];
    let lease = LeaseConfig { lease_timeout_ms: 10_000, max_redeliveries: 1 };
    with_fleet_daemon(lease, |daemon, addr| {
        std::thread::scope(|scope| {
            let mut first = ManualWorker::connect(addr);
            // The second victim registers up front so the fleet never sees
            // zero workers (which would degrade to local instead).
            let mut second = ManualWorker::connect(addr);
            let run = scope.spawn(|| daemon.service().run_cells(&runner, &cells));
            let (_, redeliveries, _) = first.pull_job("the first delivery");
            assert_eq!(redeliveries, 0);
            drop(first); // crash: the dropped connection expires the lease
            let (_, redeliveries, _) = second.pull_job("the redelivery");
            assert_eq!(redeliveries, 1);
            drop(second); // crash again: the budget (1) is now spent
            let error = run.join().unwrap().unwrap_err();
            assert!(
                matches!(error, RunnerError::LeaseExhausted { redeliveries: 1, .. }),
                "expected LeaseExhausted, got {error:?}"
            );
            let fleet_stats = daemon.fleet().unwrap().stats();
            assert_eq!(fleet_stats.exhausted, 1);
            assert_eq!(fleet_stats.redeliveries, 1);
            assert_eq!(fleet_stats.leases_expired, 2);
        });
    });
}

/// Graceful degradation: with a fleet attached but zero workers connected,
/// cells run locally — same results, no errors, and the fallback is counted.
#[test]
fn zero_workers_degrades_to_local_execution() {
    let (runner, cell) = smoke_cell();
    let local = cell.run(&runner).unwrap();
    let service = Arc::new(ExperimentService::new(ParallelExecutor::new()));
    let _daemon = Daemon::new(service.clone(), 1).with_fleet(Arc::new(Fleet::new(LeaseConfig::default())));
    let results = service.run_cells(&runner, &[cell]).unwrap();
    assert_eq!(result_projection(&results[0]), result_projection(&local));
    let stats = service.stats();
    assert_eq!(stats.local_fallbacks, 1, "stats: {stats:?}");
    assert_eq!(stats.remote_cells, 0);
    assert_eq!(stats.workers_live, 0);
}

/// Shutdown drains outstanding leases: the blocked submitter gets the typed
/// `Draining` error, and a worker's in-flight pull is refused with the
/// machine-readable `shutting_down` flag.
#[test]
fn shutdown_drains_leases_with_typed_rejections() {
    let (runner, cell) = smoke_cell();
    let cells = vec![cell];
    with_fleet_daemon(LeaseConfig::default(), |daemon, addr| {
        std::thread::scope(|scope| {
            let mut holder = ManualWorker::connect(addr);
            let run = scope.spawn(|| daemon.service().run_cells(&runner, &cells));
            // The holder leases the cell and sits on it.
            let _job = holder.pull_job("the cell to hold");
            // Park a long-poll pull so the drain rejection arrives through
            // an in-flight request.
            let worker = holder.worker;
            holder
                .conn
                .write_line(&format!("{{\"op\":\"pull\",\"id\":77,\"worker\":{worker},\"wait_ms\":1000}}"))
                .unwrap();
            std::thread::sleep(Duration::from_millis(100));
            let response = client_request(addr, "{\"op\":\"shutdown\",\"id\":9}");
            assert!(response.contains("\"shutdown\":true"), "{response}");
            let error = run.join().unwrap().unwrap_err();
            assert!(matches!(error, RunnerError::Draining { .. }), "expected Draining, got {error:?}");
            let refusal = json::parse(&read_line(&mut holder.conn)).unwrap();
            assert_eq!(json::get(&refusal, "ok"), Some(&Value::Bool(false)));
            assert_eq!(
                json::get(&refusal, "shutting_down"),
                Some(&Value::Bool(true)),
                "drained pulls must carry the machine-readable flag"
            );
        });
    });
}

/// A mixed-version fleet must fail loudly at the door: registration with a
/// different cell-key schema is refused with a typed error.
#[test]
fn mismatched_schema_registration_is_refused() {
    with_fleet_daemon(LeaseConfig::default(), |daemon, addr| {
        let refusal = ManualWorker::try_connect(addr, "comet-cell/v0")
            .err()
            .expect("a wrong-schema registration must be refused");
        assert!(refusal.contains("schema"), "{refusal}");
        assert_eq!(daemon.fleet().unwrap().stats().workers_live, 0);
    });
}

/// Network fault injection on the result path: a worker whose first result
/// delivery is dropped mid-send reconnects, the cell requeues off the dead
/// connection, and the retried delivery completes the sweep.
#[test]
fn a_dropped_result_delivery_is_retried_after_reconnect() {
    let (runner, cell) = smoke_cell();
    let local = cell.run(&runner).unwrap();
    let cells = vec![cell];
    let lease = LeaseConfig { lease_timeout_ms: 10_000, max_redeliveries: 3 };
    with_fleet_daemon(lease, |daemon, addr| {
        let stop = Arc::new(AtomicBool::new(false));
        let faults = Arc::new(FaultPlan::new().fail_delivery(0, comet_service::DeliverFault::Drop));
        let config = WorkerConfig {
            addr: addr.to_string(),
            identity: 21,
            backoff_ms: 20,
            faults: Some(faults),
            ..WorkerConfig::default()
        };
        std::thread::scope(|scope| {
            // A connected bystander keeps `workers_live` above zero during
            // the faulted worker's reconnect window — otherwise the fleet
            // would (correctly) degrade to local instead of redelivering.
            let _bystander = ManualWorker::connect(addr);
            let worker = scope.spawn(|| run_worker(&config, &stop));
            wait_until("worker registration", 5_000, || daemon.fleet().unwrap().stats().workers_live >= 2);
            let results = daemon.service().run_cells(&runner, &cells).unwrap();
            // Stop the worker before asserting: a failed assert inside this
            // scope would otherwise hang joining the still-pulling worker.
            stop.store(true, Ordering::Release);
            let report = worker.join().unwrap().unwrap();
            assert_eq!(result_projection(&results[0]), result_projection(&local));
            let stats = daemon.service().stats();
            assert!(stats.leases_expired >= 1, "stats: {stats:?}");
            assert_eq!(stats.remote_cells, 1);
            assert!(report.reconnects >= 1, "report: {report:?}");
            assert_eq!(report.completed, 1);
        });
    });
}
