//! The fleet worker: connects out to a coordinator, pulls leased cells,
//! simulates them, and streams results back.
//!
//! A worker holds **two** connections to the coordinator:
//!
//! * the *work* connection carries `register` → `pull`/`complete` in
//!   lockstep. The coordinator ties the worker's registration to this
//!   connection, so losing it expires the worker's leases immediately —
//!   faster failover than waiting out the heartbeat timeout;
//! * the *heartbeat* connection carries periodic `heartbeat` ops so a
//!   worker grinding through a long cell still proves liveness.
//!
//! Every failure path converges on one reconnect loop with deterministic
//! jittered exponential backoff ([`protocol::backoff_jitter_ms`]): fresh
//! connection, fresh registration, fresh worker id. The coordinator treats
//! the old id as dead and requeues anything it held. A schema refusal at
//! registration is fatal (a mixed-version fleet must fail loudly, not
//! retry forever); a `shutting_down` response is a clean exit.
//!
//! Simulation panics are contained worker-side (`catch_unwind`) and
//! reported as typed failures — the coordinator's service falls back to a
//! local run, which reproduces the error deterministically. The scripted
//! fault hooks ([`FaultPlan::on_worker_cell`], [`FaultPlan::on_deliver`],
//! [`FaultPlan::heartbeats_muted`]) let tests kill a worker mid-cell, drop
//! or tear a result delivery, and silence heartbeats — each exercising a
//! distinct coordinator failover path.

use crate::error::ServiceError;
use crate::faults::{DeliverFault, FaultPlan};
use crate::json;
use crate::key::{CellKey, KEY_SCHEMA};
use crate::protocol::{backoff_jitter_ms, LineConn, LineEvent};
use crate::store;
use crate::wire;
use serde::{Serialize, Value};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long one `pull` asks the coordinator to hold the poll open.
const PULL_WAIT_MS: u64 = 500;

/// Socket read timeout; reads loop on timeouts so loops stay responsive to
/// stop/death flags.
const READ_TIMEOUT_MS: u64 = 250;

/// Worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address, e.g. `127.0.0.1:7801`.
    pub addr: String,
    /// Advertised simulation threads.
    pub threads: usize,
    /// Heartbeat period.
    pub heartbeat_ms: u64,
    /// Base reconnect backoff (doubles per consecutive failure, jittered).
    pub backoff_ms: u64,
    /// Consecutive failed reconnects before giving up. `None` retries until
    /// stopped.
    pub max_reconnects: Option<u32>,
    /// Identity seed for deterministic backoff jitter (e.g. the PID).
    pub identity: u64,
    /// Scripted faults (tests only).
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            addr: String::new(),
            threads: 1,
            heartbeat_ms: 500,
            backoff_ms: 100,
            max_reconnects: Some(20),
            identity: 1,
            faults: None,
        }
    }
}

/// What a worker did over its lifetime, for logs and test assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Cells simulated and accepted by the coordinator.
    pub completed: u64,
    /// Cells whose simulation failed (failure reported upstream).
    pub failed: u64,
    /// Completions the coordinator marked stale (lease had expired).
    pub stale: u64,
    /// Successful registrations (1 + re-registrations after reconnects).
    pub registrations: u64,
    /// Reconnect attempts after a lost or faulted session.
    pub reconnects: u64,
    /// The worker died mid-cell on a scripted fault (lease left open).
    pub died_on_cell: bool,
}

/// Why a worker session (one connection pair) ended.
enum SessionEnd {
    /// Connection lost or faulted: reconnect and re-register.
    Reconnect,
    /// Coordinator is shutting down (or the stop flag was raised): exit.
    Finished,
    /// Scripted mid-cell death: exit abruptly, lease still open.
    Died,
}

fn json_quote(text: &str) -> String {
    struct W(Value);
    impl Serialize for W {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    serde_json::to_string(&W(Value::Str(text.to_string()))).expect("value-tree serialization cannot fail")
}

/// Runs a worker until the coordinator drains, `stop` is raised, the
/// reconnect budget is spent, or a scripted fault kills it.
///
/// Returns `Err` only for fatal protocol failures (schema refused at
/// registration); everything transient is absorbed by the reconnect loop.
pub fn run_worker(config: &WorkerConfig, stop: &Arc<AtomicBool>) -> Result<WorkerReport, ServiceError> {
    let mut report = WorkerReport::default();
    let mut consecutive_failures: u32 = 0;
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(report);
        }
        match run_session(config, stop, &mut report) {
            Ok(SessionEnd::Finished) => return Ok(report),
            Ok(SessionEnd::Died) => {
                report.died_on_cell = true;
                return Ok(report);
            }
            Ok(SessionEnd::Reconnect) => consecutive_failures = 0,
            Err(SessionError::Fatal(error)) => return Err(error),
            Err(SessionError::Transient) => consecutive_failures += 1,
        }
        if let Some(max) = config.max_reconnects {
            if consecutive_failures > max {
                return Ok(report);
            }
        }
        report.reconnects += 1;
        let shift = consecutive_failures.min(6);
        let base = config.backoff_ms.saturating_mul(1 << shift).max(1);
        let pause = base / 2 + backoff_jitter_ms(config.identity, base.max(2) / 2, report.reconnects as u32);
        sleep_unless_stopped(stop, pause);
    }
}

enum SessionError {
    /// Could not establish or register the session; retry with backoff.
    Transient,
    /// Protocol-fatal (schema refused): do not retry.
    Fatal(ServiceError),
}

fn sleep_unless_stopped(stop: &AtomicBool, total_ms: u64) {
    let mut remaining = total_ms;
    while remaining > 0 && !stop.load(Ordering::Acquire) {
        let chunk = remaining.min(50);
        std::thread::sleep(Duration::from_millis(chunk));
        remaining -= chunk;
    }
}

fn connect(addr: &str) -> std::io::Result<LineConn<TcpStream>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_millis(READ_TIMEOUT_MS)))?;
    stream.set_nodelay(true).ok();
    Ok(LineConn::new(stream))
}

/// Reads one response line, looping on timeouts while the session is live.
///
/// The stop/dead flags are only honored on a read *timeout*: a response
/// already in flight is always drained, so a worker stopped right after the
/// coordinator accepted its result still observes (and counts) the
/// acknowledgement instead of abandoning it mid-read.
fn read_response(conn: &mut LineConn<TcpStream>, stop: &AtomicBool, dead: &AtomicBool) -> Option<Value> {
    loop {
        match conn.read_event() {
            Ok(LineEvent::Line(line)) => return json::parse(&line).ok(),
            Ok(LineEvent::TimedOut) => {
                if stop.load(Ordering::Acquire) || dead.load(Ordering::Acquire) {
                    return None;
                }
            }
            Ok(LineEvent::Eof { .. }) | Err(_) => return None,
        }
    }
}

fn is_shutting_down(response: &Value) -> bool {
    json::get(response, "shutting_down").is_some_and(|flag| flag == &Value::Bool(true))
}

fn response_ok(response: &Value) -> bool {
    json::get(response, "ok") == Some(&Value::Bool(true))
}

fn run_session(
    config: &WorkerConfig,
    stop: &Arc<AtomicBool>,
    report: &mut WorkerReport,
) -> Result<SessionEnd, SessionError> {
    let mut work = connect(&config.addr).map_err(|_| SessionError::Transient)?;
    let session_dead = Arc::new(AtomicBool::new(false));

    // Register on the work connection.
    let register = format!(
        "{{\"op\":\"register\",\"id\":1,\"threads\":{},\"schema\":{}}}",
        config.threads,
        json_quote(KEY_SCHEMA)
    );
    work.write_line(&register).map_err(|_| SessionError::Transient)?;
    let response = read_response(&mut work, stop, &session_dead).ok_or(SessionError::Transient)?;
    if !response_ok(&response) {
        if is_shutting_down(&response) {
            return Ok(SessionEnd::Finished);
        }
        let message = json::get(&response, "error")
            .and_then(json::as_str)
            .unwrap_or("registration refused")
            .to_string();
        return Err(SessionError::Fatal(ServiceError::Protocol(message)));
    }
    let worker = json::get(&response, "worker").and_then(json::as_u64).ok_or(SessionError::Transient)?;
    report.registrations += 1;

    // The heartbeat piggybacks a compact snapshot of these (relaxed reads of
    // values the work loop maintains), so the coordinator's scrape can show
    // per-worker progress without extra round trips.
    let cells_done = Arc::new(AtomicU64::new(report.completed));
    let busy = Arc::new(AtomicBool::new(false));

    // Heartbeats flow on their own connection so a long-running cell cannot
    // starve them. Failures here just flag the session dead; the work loop
    // notices and reconnects.
    let heartbeat_thread = {
        let addr = config.addr.clone();
        let period = config.heartbeat_ms;
        let dead = session_dead.clone();
        let faults = config.faults.clone();
        let stop = stop.clone();
        let cells_done = cells_done.clone();
        let busy = busy.clone();
        std::thread::spawn(move || {
            let Ok(mut conn) = connect(&addr) else {
                return;
            };
            let mut id = 0u64;
            while !stop.load(Ordering::Acquire) && !dead.load(Ordering::Acquire) {
                let muted = faults.as_ref().is_some_and(|plan| plan.heartbeats_muted());
                if !muted {
                    id += 1;
                    let line = format!(
                        "{{\"op\":\"heartbeat\",\"id\":{id},\"worker\":{worker},\"cells\":{},\"busy\":{}}}",
                        cells_done.load(Ordering::Relaxed),
                        busy.load(Ordering::Relaxed)
                    );
                    if conn.write_line(&line).is_err() {
                        dead.store(true, Ordering::Release);
                        return;
                    }
                    match read_response(&mut conn, &stop, &dead) {
                        Some(response) if response_ok(&response) => {
                            // `live:false` ⇒ the coordinator presumed us
                            // dead; force a re-registration.
                            if json::get(&response, "live") == Some(&Value::Bool(false)) {
                                dead.store(true, Ordering::Release);
                                return;
                            }
                        }
                        _ => {
                            dead.store(true, Ordering::Release);
                            return;
                        }
                    }
                }
                let mut remaining = period;
                while remaining > 0 && !stop.load(Ordering::Acquire) && !dead.load(Ordering::Acquire) {
                    let chunk = remaining.min(50);
                    std::thread::sleep(Duration::from_millis(chunk));
                    remaining -= chunk;
                }
            }
        })
    };

    let end = work_loop(config, stop, &session_dead, &mut work, worker, report, &cells_done, &busy);
    session_dead.store(true, Ordering::Release);
    drop(work);
    heartbeat_thread.join().ok();
    end
}

#[allow(clippy::too_many_arguments)]
fn work_loop(
    config: &WorkerConfig,
    stop: &AtomicBool,
    session_dead: &AtomicBool,
    work: &mut LineConn<TcpStream>,
    worker: u64,
    report: &mut WorkerReport,
    cells_done: &AtomicU64,
    busy: &AtomicBool,
) -> Result<SessionEnd, SessionError> {
    let mut id = 1u64;
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(SessionEnd::Finished);
        }
        if session_dead.load(Ordering::Acquire) {
            return Ok(SessionEnd::Reconnect);
        }
        id += 1;
        let pull = format!("{{\"op\":\"pull\",\"id\":{id},\"worker\":{worker},\"wait_ms\":{PULL_WAIT_MS}}}");
        if work.write_line(&pull).is_err() {
            return Ok(SessionEnd::Reconnect);
        }
        let Some(response) = read_response(work, stop, session_dead) else {
            if stop.load(Ordering::Acquire) {
                return Ok(SessionEnd::Finished);
            }
            return Ok(SessionEnd::Reconnect);
        };
        if !response_ok(&response) {
            if is_shutting_down(&response) {
                return Ok(SessionEnd::Finished);
            }
            // Unknown worker (presumed dead while we polled): re-register.
            return Ok(SessionEnd::Reconnect);
        }
        let Some(job) = json::get(&response, "job").filter(|job| **job != Value::Null) else {
            continue;
        };
        let Some(key) = json::get(job, "key").and_then(json::as_str).and_then(CellKey::from_hex) else {
            return Ok(SessionEnd::Reconnect);
        };
        busy.store(true, Ordering::Relaxed);
        let outcome = match execute_job(config, job) {
            JobOutcome::Died => return Ok(SessionEnd::Died),
            JobOutcome::Ran(outcome) => outcome,
        };
        busy.store(false, Ordering::Relaxed);
        id += 1;
        let line = match &outcome {
            Ok(projection) => format!(
                "{{\"op\":\"complete\",\"id\":{id},\"worker\":{worker},\"key\":\"{key}\",\"result\":{projection}}}"
            ),
            Err(message) => format!(
                "{{\"op\":\"complete\",\"id\":{id},\"worker\":{worker},\"key\":\"{key}\",\"error\":{}}}",
                json_quote(message)
            ),
        };
        match config.faults.as_ref().map(|plan| plan.on_deliver()).unwrap_or(DeliverFault::Proceed) {
            DeliverFault::Proceed => {}
            DeliverFault::Drop => return Ok(SessionEnd::Reconnect),
            DeliverFault::Truncate { keep_bytes } => {
                let torn = &line.as_bytes()[..keep_bytes.min(line.len())];
                let stream = work.get_mut();
                stream.write_all(torn).ok();
                stream.flush().ok();
                return Ok(SessionEnd::Reconnect);
            }
        }
        if work.write_line(&line).is_err() {
            return Ok(SessionEnd::Reconnect);
        }
        let Some(response) = read_response(work, stop, session_dead) else {
            return Ok(SessionEnd::Reconnect);
        };
        if !response_ok(&response) {
            if is_shutting_down(&response) {
                return Ok(SessionEnd::Finished);
            }
            return Ok(SessionEnd::Reconnect);
        }
        let accepted = json::get(&response, "accepted") == Some(&Value::Bool(true));
        if !accepted {
            report.stale += 1;
            continue;
        }
        match &outcome {
            Ok(_) => {
                report.completed += 1;
                cells_done.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => report.failed += 1,
        }
    }
}

enum JobOutcome {
    /// Simulation ran; `Ok` carries the serialized result projection.
    Ran(Result<String, String>),
    /// A scripted fault killed the worker mid-cell.
    Died,
}

fn execute_job(config: &WorkerConfig, job: &Value) -> JobOutcome {
    let Some(payload) = json::get(job, "payload") else {
        return JobOutcome::Ran(Err("pull response carried no payload".to_string()));
    };
    // Re-serialize the payload subtree; `decode_job`'s byte-equality check
    // against the canonical form catches any drift this could introduce.
    struct W(Value);
    impl Serialize for W {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    let payload_text =
        serde_json::to_string(&W(payload.clone())).expect("value-tree serialization cannot fail");
    let job = match wire::decode_job(&payload_text) {
        Ok(job) => job,
        Err(error) => return JobOutcome::Ran(Err(format!("undecodable cell: {error}"))),
    };
    let label = job.cell.label();
    if config.faults.as_ref().is_some_and(|plan| plan.on_worker_cell(&label)) {
        return JobOutcome::Died;
    }
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.cell.run(&job.runner)));
    let outcome = match run {
        Ok(Ok(result)) => Ok(store::result_projection(&result)),
        Ok(Err(error)) => Err(error.to_string()),
        Err(_) => Err(format!("worker panic while simulating {label}")),
    };
    JobOutcome::Ran(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_quote_escapes() {
        assert_eq!(json_quote("a\"b\\c"), r#""a\"b\\c""#);
    }

    #[test]
    fn connect_failure_is_transient_and_bounded() {
        // Point at a port nothing listens on; the reconnect budget bounds
        // the loop, and the report shows the attempts.
        let config = WorkerConfig {
            addr: "127.0.0.1:9".to_string(),
            backoff_ms: 1,
            max_reconnects: Some(2),
            ..WorkerConfig::default()
        };
        let stop = Arc::new(AtomicBool::new(false));
        let report = run_worker(&config, &stop).unwrap();
        assert_eq!(report.registrations, 0);
        assert!(report.reconnects >= 2);
    }

    #[test]
    fn stop_flag_short_circuits() {
        let config = WorkerConfig { addr: "127.0.0.1:9".to_string(), ..WorkerConfig::default() };
        let stop = Arc::new(AtomicBool::new(true));
        let report = run_worker(&config, &stop).unwrap();
        assert_eq!(report, WorkerReport::default());
    }
}
