//! On-disk persistence for the result cache: JSON-lines segments plus a
//! streaming reader, so a warm cache survives service restarts.
//!
//! Layout: `<dir>/segment-NNNNNN.jsonl`, one `{"key": "<32 hex>", "result":
//! {…}}` object per line, appended in completion order and rotated every
//! [`SEGMENT_CAPACITY`] entries. The *open* segment is append-only and
//! fsync-free by design — a torn final line (crash mid-append) is detected
//! by the parser and skipped, costing one re-simulation, never a wrong
//! result. Sealing a segment (rotation, compaction, shutdown) fsyncs it, so
//! every *sealed* segment is durable.
//!
//! Recovery ([`ResultStore::recover`]) distinguishes two failure shapes:
//! a malformed **final** line is the expected torn-append crash artifact
//! and is skipped in place, while a malformed line **mid-file** means the
//! segment was corrupted after the fact (bit rot, foreign writes) — the
//! whole file is moved into `<dir>/quarantine/` rather than trusted, and
//! only the entries before the corruption point are loaded. Recovery never
//! aborts a service start.
//!
//! Reading back reconstructs [`RunResult`] field by field from the parsed
//! value tree. The two `#[serde(skip)]` fields (`energy_breakdown`,
//! `controller`) are not serialized and come back as defaults; every
//! experiment assembly works off the serialized fields only, so cached and
//! fresh results are interchangeable where the service hands them out.

use crate::faults::{AppendFault, FaultPlan};
use crate::json;
use crate::key::CellKey;
use comet_sim::RunResult;
use serde::Value;
use std::fs::{self, File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Entries per segment file before rotating to a new one.
pub const SEGMENT_CAPACITY: usize = 512;

/// Subdirectory corrupt segments are moved into during recovery.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Append-only content-addressed result store.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    writer: Option<BufWriter<File>>,
    segment_index: u64,
    entries_in_segment: usize,
    segments_on_disk: usize,
    faults: Option<Arc<FaultPlan>>,
}

/// What [`ResultStore::recover`] found on disk.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Every trusted `(key, result)` entry, in write order (callers apply
    /// last-write-wins for re-recorded keys).
    pub entries: Vec<(CellKey, RunResult)>,
    /// Malformed final lines skipped in place (torn appends).
    pub torn_lines: usize,
    /// Segments moved into [`QUARANTINE_DIR`] because of mid-file
    /// corruption or an unreadable file.
    pub quarantined: usize,
}

impl ResultStore {
    /// Opens (creating if needed) the store directory. Existing segments are
    /// left untouched; new entries go to a fresh segment after the highest
    /// existing index. Use [`recover`](Self::recover) (or the legacy
    /// [`stream`](Self::stream)) to load what's already there.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<ResultStore> {
        Self::open_faulted(dir, None)
    }

    /// [`open`](Self::open) with a fault-injection plan threaded into the
    /// append path (test-only; production callers pass no plan).
    pub fn open_faulted(
        dir: impl Into<PathBuf>,
        faults: Option<Arc<FaultPlan>>,
    ) -> std::io::Result<ResultStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        // An interrupted compaction may leave `*.tmp` files behind; they were
        // never renamed into place, so their content is not yet trusted.
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|ext| ext == "tmp") {
                let _ = fs::remove_file(&path);
            }
        }
        let files = segment_files(&dir)?;
        let segment_index = files.last().map(|(index, _)| index + 1).unwrap_or(0);
        Ok(ResultStore {
            dir,
            writer: None,
            segment_index,
            entries_in_segment: 0,
            segments_on_disk: files.len(),
            faults,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Segment files currently on disk (sealed and open).
    pub fn segments_on_disk(&self) -> usize {
        self.segments_on_disk
    }

    pub(crate) fn set_layout(&mut self, next_segment_index: u64, segments_on_disk: usize) {
        self.segment_index = next_segment_index;
        self.entries_in_segment = 0;
        self.segments_on_disk = segments_on_disk;
    }

    /// Flushes and fsyncs the open segment (if any) and closes it; the next
    /// append starts a fresh segment. Called on rotation, before
    /// compaction, and at graceful shutdown — a sealed segment is durable.
    pub fn seal(&mut self) -> std::io::Result<()> {
        if let Some(mut writer) = self.writer.take() {
            writer.flush()?;
            writer.get_ref().sync_all()?;
        }
        self.entries_in_segment = 0;
        Ok(())
    }

    /// Appends one completed cell. Flushed per entry so a reader (or a
    /// restart) sees every fully written line; the previous segment is
    /// fsynced when a rotation seals it.
    pub fn append(&mut self, key: CellKey, result: &RunResult) -> std::io::Result<()> {
        if self.entries_in_segment >= SEGMENT_CAPACITY {
            self.seal()?;
        }
        if self.writer.is_none() {
            let path = self.dir.join(format!("segment-{:06}.jsonl", self.segment_index));
            let file = OpenOptions::new().create(true).append(true).open(path)?;
            self.writer = Some(BufWriter::new(file));
            self.segment_index += 1;
            self.entries_in_segment = 0;
            self.segments_on_disk += 1;
        }
        let writer = self.writer.as_mut().expect("writer opened above");
        let result_json = serde_json::to_string(result).expect("value-tree serialization cannot fail");
        let line = format!("{{\"key\":\"{key}\",\"result\":{result_json}}}");
        if let Some(plan) = &self.faults {
            match plan.on_append() {
                AppendFault::Proceed => {}
                AppendFault::Enospc => return Err(FaultPlan::enospc_error()),
                AppendFault::Torn { keep_bytes } => {
                    let keep = keep_bytes.min(line.len());
                    writer.write_all(&line.as_bytes()[..keep])?;
                    writer.flush()?;
                    return Err(FaultPlan::torn_error());
                }
            }
        }
        writeln!(writer, "{line}")?;
        writer.flush()?;
        self.entries_in_segment += 1;
        Ok(())
    }

    /// Streams every persisted entry across all segments, in write order.
    /// Malformed lines (torn tail writes) are counted, not propagated.
    pub fn stream(&self) -> std::io::Result<StoreReader> {
        let files = segment_files(&self.dir)?;
        Ok(StoreReader { files, current: None, skipped: 0 })
    }

    /// Loads every trusted entry from disk, quarantining corrupt segments
    /// instead of aborting (see the module docs for the torn-tail vs
    /// mid-file-corruption distinction). Never fails on segment *content*;
    /// only directory-level I/O errors propagate.
    pub fn recover(&mut self) -> std::io::Result<Recovery> {
        let _span = comet_telemetry::span("store.recover");
        let mut recovery = Recovery::default();
        for (_, path) in segment_files(&self.dir)? {
            let file = match File::open(&path) {
                Ok(file) => file,
                Err(_) => {
                    if self.quarantine(&path) {
                        recovery.quarantined += 1;
                        self.segments_on_disk = self.segments_on_disk.saturating_sub(1);
                    }
                    continue;
                }
            };
            let mut segment_entries: Vec<(CellKey, RunResult)> = Vec::new();
            // (line number, total lines) of the first malformed line, if any.
            let mut first_bad: Option<usize> = None;
            let mut lines_seen = 0usize;
            for line in BufReader::new(file).lines() {
                lines_seen += 1;
                let parsed = match line {
                    Ok(line) if line.trim().is_empty() => continue,
                    Ok(line) => parse_entry(&line),
                    Err(_) => None,
                };
                match parsed {
                    Some(entry) if first_bad.is_none() => segment_entries.push(entry),
                    Some(_) => {} // past the corruption point: not trusted
                    None => first_bad = first_bad.or(Some(lines_seen)),
                }
            }
            if let Some(bad) = first_bad {
                if bad == lines_seen {
                    // A malformed *final* line is the expected torn-append
                    // artifact: skip it, trust the rest of the segment.
                    recovery.torn_lines += 1;
                } else if self.quarantine(&path) {
                    // Malformed mid-file: the segment is corrupt. Keep the
                    // entries before the corruption point, quarantine the file.
                    recovery.quarantined += 1;
                    self.segments_on_disk = self.segments_on_disk.saturating_sub(1);
                }
            }
            recovery.entries.append(&mut segment_entries);
        }
        Ok(recovery)
    }

    /// Moves `path` into the quarantine subdirectory; returns whether the
    /// move succeeded (a failed move leaves the file where it was — it will
    /// be re-quarantined on the next recovery).
    fn quarantine(&self, path: &Path) -> bool {
        let quarantine = self.dir.join(QUARANTINE_DIR);
        if fs::create_dir_all(&quarantine).is_err() {
            return false;
        }
        let name = match path.file_name() {
            Some(name) => name,
            None => return false,
        };
        fs::rename(path, quarantine.join(name)).is_ok()
    }
}

/// Segment files under `dir`, sorted by index.
pub(crate) fn segment_files(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut files = Vec::new();
    if !dir.exists() {
        return Ok(files);
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(name) => name,
            None => continue,
        };
        if let Some(index) = name.strip_prefix("segment-").and_then(|rest| rest.strip_suffix(".jsonl")) {
            if let Ok(index) = index.parse::<u64>() {
                files.push((index, path));
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Streaming reader over a store's segments: yields `(key, result)` pairs one
/// line at a time without materializing whole segments.
#[derive(Debug)]
pub struct StoreReader {
    files: Vec<(u64, PathBuf)>,
    current: Option<std::io::Lines<BufReader<File>>>,
    skipped: usize,
}

impl StoreReader {
    /// Lines that failed to parse so far (torn writes, foreign files).
    pub fn skipped(&self) -> usize {
        self.skipped
    }
}

impl Iterator for StoreReader {
    type Item = (CellKey, RunResult);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(lines) = &mut self.current {
                for line in lines.by_ref() {
                    let line = match line {
                        Ok(line) => line,
                        Err(_) => {
                            self.skipped += 1;
                            continue;
                        }
                    };
                    if line.trim().is_empty() {
                        continue;
                    }
                    match parse_entry(&line) {
                        Some(entry) => return Some(entry),
                        None => self.skipped += 1,
                    }
                }
                self.current = None;
            }
            if self.files.is_empty() {
                return None;
            }
            let (_, path) = self.files.remove(0);
            match File::open(&path) {
                Ok(file) => self.current = Some(BufReader::new(file).lines()),
                Err(_) => self.skipped += 1,
            }
        }
    }
}

fn parse_entry(line: &str) -> Option<(CellKey, RunResult)> {
    let value = json::parse(line).ok()?;
    let key = CellKey::from_hex(json::as_str(json::get(&value, "key")?)?)?;
    let result = run_result_from_value(json::get(&value, "result")?)?;
    Some((key, result))
}

/// Reconstructs a [`RunResult`] from its serialized value tree. Returns
/// `None` if any serialized field is missing or mistyped (the entry is then
/// treated as corrupt and skipped). Skipped-at-serialization fields come back
/// as their defaults.
pub fn run_result_from_value(value: &Value) -> Option<RunResult> {
    let field = |name: &str| json::get(value, name);
    let mitigation_value = field("mitigation")?;
    let mitigation = comet_mitigation_stats_from_value(mitigation_value)?;
    Some(RunResult {
        label: json::as_str(field("label")?)?.to_string(),
        mechanism: json::as_str(field("mechanism")?)?.to_string(),
        cores: json::as_u64(field("cores")?)? as usize,
        dram_cycles: json::as_u64(field("dram_cycles")?)?,
        cpu_cycles: json::as_f64(field("cpu_cycles")?)?,
        instructions: json::as_u64(field("instructions")?)?,
        per_core_ipc: json::as_seq(field("per_core_ipc")?)?
            .iter()
            .map(json::as_f64)
            .collect::<Option<_>>()?,
        ipc: json::as_f64(field("ipc")?)?,
        reads: json::as_u64(field("reads")?)?,
        writes: json::as_u64(field("writes")?)?,
        activations: json::as_u64(field("activations")?)?,
        avg_read_latency_ns: json::as_f64(field("avg_read_latency_ns")?)?,
        energy_nj: json::as_f64(field("energy_nj")?)?,
        energy_breakdown: Default::default(),
        controller: Default::default(),
        engine: Default::default(),
        mitigation,
    })
}

fn comet_mitigation_stats_from_value(value: &Value) -> Option<comet_mitigations::MitigationStats> {
    let get = |name: &str| json::get(value, name).and_then(json::as_u64);
    Some(comet_mitigations::MitigationStats {
        activations_observed: get("activations_observed")?,
        preventive_refreshes: get("preventive_refreshes")?,
        aggressors_identified: get("aggressors_identified")?,
        early_rank_refreshes: get("early_rank_refreshes")?,
        counter_reads: get("counter_reads")?,
        counter_writes: get("counter_writes")?,
        throttled_activations: get("throttled_activations")?,
        throttle_cycles: get("throttle_cycles")?,
        periodic_resets: get("periodic_resets")?,
    })
}

/// Serializes `result` the same way the store does — the canonical
/// cached-result projection used by the bit-exactness tests.
pub fn result_projection(result: &RunResult) -> String {
    serde_json::to_string(result).expect("value-tree serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_sim::{MechanismKind, Runner, SimConfig};

    fn sample_result() -> RunResult {
        Runner::new(SimConfig::quick_test())
            .run_single_core("429.mcf", MechanismKind::Baseline, 1000)
            .unwrap()
    }

    #[test]
    fn round_trips_a_real_run_result_bit_exactly() {
        let result = sample_result();
        let json_text = result_projection(&result);
        let parsed = json::parse(&json_text).unwrap();
        let rebuilt = run_result_from_value(&parsed).expect("reconstruction succeeds");
        assert_eq!(result_projection(&rebuilt), json_text, "projection must round-trip bit-exactly");
    }

    #[test]
    fn segments_rotate_and_stream_back_in_order() {
        let dir = std::env::temp_dir().join(format!("comet-store-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let result = sample_result();
        {
            let mut store = ResultStore::open(&dir).unwrap();
            for i in 0..(SEGMENT_CAPACITY + 3) as u128 {
                store.append(CellKey(i), &result).unwrap();
            }
        }
        assert_eq!(segment_files(&dir).unwrap().len(), 2, "rotation after SEGMENT_CAPACITY entries");

        // Reopen: entries stream back in write order, new appends go to a new segment.
        let mut store = ResultStore::open(&dir).unwrap();
        let entries: Vec<_> = store.stream().unwrap().collect();
        assert_eq!(entries.len(), SEGMENT_CAPACITY + 3);
        assert_eq!(entries[0].0, CellKey(0));
        assert_eq!(entries.last().unwrap().0, CellKey((SEGMENT_CAPACITY + 2) as u128));
        store.append(CellKey(9999), &result).unwrap();
        assert_eq!(store.stream().unwrap().count(), SEGMENT_CAPACITY + 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_lines_are_skipped_not_fatal() {
        let dir = std::env::temp_dir().join(format!("comet-store-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let result = sample_result();
        {
            let mut store = ResultStore::open(&dir).unwrap();
            store.append(CellKey(1), &result).unwrap();
        }
        // Simulate a crash mid-append: a truncated trailing line.
        let (_, path) = segment_files(&dir).unwrap()[0].clone();
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        write!(file, "{{\"key\":\"00000000000000000000000000000002\",\"result\":{{\"label\":\"tor").unwrap();
        drop(file);

        let store = ResultStore::open(&dir).unwrap();
        let mut reader = store.stream().unwrap();
        let entries: Vec<_> = reader.by_ref().collect();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, CellKey(1));
        assert_eq!(reader.skipped(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
