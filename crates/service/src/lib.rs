//! # comet-service
//!
//! The long-running experiment service of the CoMeT reproduction: a daemon
//! that accepts sweep requests over a line protocol (Unix socket or stdin),
//! decomposes them into experiment cells through the plan/assemble API of
//! [`comet_sim::experiments`], schedules novel cells onto the
//! [`ParallelExecutor`](comet_sim::experiments::ParallelExecutor) via a
//! priority job queue, deduplicates in-flight work across concurrent
//! requests, and memoizes every completed cell in a content-addressed result
//! cache persisted as JSON-lines segments.
//!
//! The cache key is the 128-bit FNV-1a hash of a canonical serialized form of
//! the *full* cell identity — `SimConfig` (geometry, timing, energy,
//! controller, core, cycle counts), seed, loop mode, workload placement,
//! mechanism parameters, and RowHammer threshold — so a hit is, by
//! construction, bit-identical to a fresh simulation of the same cell. Repeat
//! sweeps are served entirely from cache; overlapping sweeps (e.g. the
//! adversarial grids sharing attacked baselines) only simulate their novel
//! cells.
//!
//! ## In-process example
//!
//! ```rust
//! use comet_service::ExperimentService;
//! use comet_sim::experiments::{CellBackend, CellSpec, ParallelExecutor};
//! use comet_sim::{MechanismKind, Runner, SimConfig};
//!
//! let service = ExperimentService::new(ParallelExecutor::new());
//! let runner = Runner::new(SimConfig::quick_test());
//! let cells = vec![CellSpec::single("429.mcf", MechanismKind::Baseline, 1000)];
//! let first = service.run_cells(&runner, &cells).unwrap();
//! let again = service.run_cells(&runner, &cells).unwrap();
//! assert_eq!(first[0].instructions, again[0].instructions);
//! assert_eq!(service.stats().simulated, 1); // second call was a pure cache hit
//! ```

pub mod compact;
pub mod daemon;
pub mod error;
pub mod faults;
pub mod fleet;
pub mod json;
pub mod key;
pub mod lease;
pub mod protocol;
pub mod queue;
pub mod service;
pub mod store;
pub mod targets;
pub mod wire;
pub mod worker;

pub use compact::CompactionReport;
pub use daemon::{Daemon, DEFAULT_QUEUE_BOUND};
pub use error::ServiceError;
pub use faults::{DeliverFault, FaultPlan};
pub use fleet::{Fleet, FleetDisposition, FleetStats, LocalReason, PullOutcome};
pub use key::{canonical_cell_form, cell_key, CellKey, KEY_SCHEMA};
pub use lease::{CompleteOutcome, JobEvent, LeaseConfig, LeaseCounters, LeaseTable};
pub use queue::{JobQueue, PopWait, Push};
pub use service::{ExperimentService, ServiceConfig, ServiceStats};
pub use store::{Recovery, ResultStore, StoreReader};
pub use worker::{run_worker, WorkerConfig, WorkerReport};
