//! The experiment daemon binary.
//!
//! ```text
//! comet-serviced [--socket PATH | --stdin] [--listen tcp://HOST:PORT]
//!                [--metrics tcp://HOST:PORT] [--cache DIR]
//!                [--threads N] [--job-workers N] [--queue-depth N]
//!                [--max-cells N] [--max-segments N]
//!                [--lease-timeout-ms N] [--max-redeliveries N]
//! ```
//!
//! * `--socket PATH` — listen on a Unix-domain socket (the production mode;
//!   pair it with the `service` client in `comet-bench`).
//! * `--listen tcp://HOST:PORT` — additionally listen on TCP and act as a
//!   **fleet coordinator**: `comet-worker` processes connect here, register,
//!   and pull leased cells. With zero connected workers every cell runs
//!   locally, exactly as without `--listen` (graceful degradation).
//! * `--metrics tcp://HOST:PORT` — serve the metrics registry as Prometheus
//!   text exposition over plain HTTP on this address (`GET /metrics`, or
//!   any request at all — the endpoint is read-only and single-purpose).
//! * `--stdin` — serve a single session on stdin/stdout (the default; handy
//!   for scripting and tests: `echo '{"op":"ping"}' | comet-serviced`).
//! * `--cache DIR` — persist the result cache as JSON-lines segments under
//!   `DIR` and pre-load whatever is already there (corrupt segments are
//!   quarantined under `DIR/quarantine/`, never fatal).
//! * `--threads N` — worker threads for cell simulation (default: all cores).
//! * `--job-workers N` — concurrent sweep requests (default 1: strict
//!   priority order across clients).
//! * `--queue-depth N` — admission bound: `run` requests past `N` queued
//!   jobs are shed with a typed `overloaded` response (default 1024).
//! * `--max-cells N` — in-memory cache bound: least-recently-used completed
//!   cells are evicted past `N` (default: unbounded).
//! * `--max-segments N` — on-disk bound: exceeding `N` segment files
//!   triggers a compaction pass that rewrites only live keys (default:
//!   never compact).
//! * `--lease-timeout-ms N` — fleet lease/heartbeat timeout: a worker silent
//!   for `N` ms loses its leases, and its cells requeue (default 2000).
//! * `--max-redeliveries N` — redelivery budget per cell before the
//!   coordinator gives up with a typed `lease exhausted` error (default 3).

use comet_service::{Daemon, ExperimentService, Fleet, LeaseConfig, ServiceConfig, DEFAULT_QUEUE_BOUND};
use comet_sim::experiments::ParallelExecutor;
use std::path::PathBuf;
use std::sync::Arc;

struct Args {
    socket: Option<PathBuf>,
    listen: Option<String>,
    metrics: Option<String>,
    cache: Option<PathBuf>,
    threads: Option<usize>,
    job_workers: usize,
    queue_depth: usize,
    max_cells: Option<usize>,
    max_segments: Option<usize>,
    lease_timeout_ms: u64,
    max_redeliveries: u32,
}

fn parse_args() -> Args {
    let defaults = LeaseConfig::default();
    let mut args = Args {
        socket: None,
        listen: None,
        metrics: None,
        cache: None,
        threads: None,
        job_workers: 1,
        queue_depth: DEFAULT_QUEUE_BOUND,
        max_cells: None,
        max_segments: None,
        lease_timeout_ms: defaults.lease_timeout_ms,
        max_redeliveries: defaults.max_redeliveries,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            })
        };
        let parse_count = |flag: &str, text: String| -> usize {
            match text.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    eprintln!("error: invalid {flag} value");
                    std::process::exit(2);
                }
            }
        };
        match arg.as_str() {
            "--socket" => args.socket = Some(PathBuf::from(value("--socket"))),
            "--stdin" => args.socket = None,
            "--listen" => {
                let spec = value("--listen");
                match comet_service::protocol::parse_tcp_spec(&spec) {
                    Some(addr) => args.listen = Some(addr.to_string()),
                    None => {
                        eprintln!("error: --listen expects tcp://HOST:PORT, got {spec:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--metrics" => {
                let spec = value("--metrics");
                match comet_service::protocol::parse_tcp_spec(&spec) {
                    Some(addr) => args.metrics = Some(addr.to_string()),
                    None => {
                        eprintln!("error: --metrics expects tcp://HOST:PORT, got {spec:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--cache" => args.cache = Some(PathBuf::from(value("--cache"))),
            "--threads" => args.threads = Some(parse_count("--threads", value("--threads"))),
            "--job-workers" => args.job_workers = parse_count("--job-workers", value("--job-workers")),
            "--queue-depth" => args.queue_depth = parse_count("--queue-depth", value("--queue-depth")),
            "--max-cells" => args.max_cells = Some(parse_count("--max-cells", value("--max-cells"))),
            "--max-segments" => {
                args.max_segments = Some(parse_count("--max-segments", value("--max-segments")))
            }
            "--lease-timeout-ms" => {
                args.lease_timeout_ms = parse_count("--lease-timeout-ms", value("--lease-timeout-ms")) as u64
            }
            "--max-redeliveries" => {
                args.max_redeliveries = parse_count("--max-redeliveries", value("--max-redeliveries")) as u32
            }
            "--help" | "-h" => {
                println!(
                    "usage: comet-serviced [--socket PATH | --stdin] [--listen tcp://HOST:PORT] \
                     [--metrics tcp://HOST:PORT] [--cache DIR] [--threads N] [--job-workers N] \
                     [--queue-depth N] [--max-cells N] [--max-segments N] [--lease-timeout-ms N] \
                     [--max-redeliveries N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let executor = match args.threads {
        Some(threads) => ParallelExecutor::with_threads(threads),
        None => ParallelExecutor::new(),
    };
    let config = ServiceConfig {
        max_cached_cells: args.max_cells,
        max_segments: args.max_segments,
        ..ServiceConfig::default()
    };
    let service = match ExperimentService::with_config(executor, args.cache.clone(), config) {
        Ok(service) => {
            if let Some(dir) = &args.cache {
                let stats = service.stats();
                eprintln!(
                    "comet-serviced: loaded {} cached cell(s) from {} \
                     ({} torn line(s) skipped, {} segment(s) quarantined)",
                    stats.loaded_from_disk,
                    dir.display(),
                    stats.torn_lines,
                    stats.quarantined_segments
                );
            }
            service
        }
        Err(error) => {
            let dir = args.cache.as_deref().map(|p| p.display().to_string()).unwrap_or_default();
            eprintln!("error: could not open cache dir {dir}: {error}");
            std::process::exit(1);
        }
    };
    let mut daemon = Daemon::with_queue_bound(Arc::new(service), args.job_workers, args.queue_depth);
    if args.listen.is_some() {
        let lease =
            LeaseConfig { lease_timeout_ms: args.lease_timeout_ms, max_redeliveries: args.max_redeliveries };
        daemon = daemon.with_fleet(Arc::new(Fleet::new(lease)));
    }

    let outcome = match (&args.socket, &args.listen, &args.metrics) {
        (None, None, None) => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            daemon.serve_session(stdin.lock(), stdout.lock())
        }
        (socket, listen, metrics) => {
            #[cfg(unix)]
            {
                if let Some(path) = socket {
                    eprintln!("comet-serviced: listening on {}", path.display());
                }
                if let Some(addr) = listen {
                    eprintln!("comet-serviced: fleet coordinator on tcp://{addr}");
                }
                if let Some(addr) = metrics {
                    eprintln!("comet-serviced: metrics endpoint on http://{addr}/metrics");
                }
                daemon.serve(socket.as_deref(), listen.as_deref(), metrics.as_deref())
            }
            #[cfg(not(unix))]
            {
                eprintln!("error: --socket/--listen/--metrics require a Unix platform; use --stdin");
                std::process::exit(2);
            }
        }
    };
    if let Err(error) = outcome {
        eprintln!("comet-serviced: fatal: {error}");
        std::process::exit(1);
    }
}
