//! The experiment daemon binary.
//!
//! ```text
//! comet-serviced [--socket PATH | --stdin] [--cache DIR] [--threads N] [--job-workers N]
//! ```
//!
//! * `--socket PATH` — listen on a Unix-domain socket (the production mode;
//!   pair it with the `service` client in `comet-bench`).
//! * `--stdin` — serve a single session on stdin/stdout (the default; handy
//!   for scripting and tests: `echo '{"op":"ping"}' | comet-serviced`).
//! * `--cache DIR` — persist the result cache as JSON-lines segments under
//!   `DIR` and pre-load whatever is already there.
//! * `--threads N` — worker threads for cell simulation (default: all cores).
//! * `--job-workers N` — concurrent sweep requests (default 1: strict
//!   priority order across clients).

use comet_service::{Daemon, ExperimentService};
use comet_sim::experiments::ParallelExecutor;
use std::path::PathBuf;
use std::sync::Arc;

struct Args {
    socket: Option<PathBuf>,
    cache: Option<PathBuf>,
    threads: Option<usize>,
    job_workers: usize,
}

fn parse_args() -> Args {
    let mut args = Args { socket: None, cache: None, threads: None, job_workers: 1 };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--socket" => args.socket = Some(PathBuf::from(value("--socket"))),
            "--stdin" => args.socket = None,
            "--cache" => args.cache = Some(PathBuf::from(value("--cache"))),
            "--threads" => match value("--threads").parse::<usize>() {
                Ok(n) if n >= 1 => args.threads = Some(n),
                _ => {
                    eprintln!("error: invalid --threads value");
                    std::process::exit(2);
                }
            },
            "--job-workers" => match value("--job-workers").parse::<usize>() {
                Ok(n) if n >= 1 => args.job_workers = n,
                _ => {
                    eprintln!("error: invalid --job-workers value");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: comet-serviced [--socket PATH | --stdin] [--cache DIR] [--threads N] [--job-workers N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let executor = match args.threads {
        Some(threads) => ParallelExecutor::with_threads(threads),
        None => ParallelExecutor::new(),
    };
    let service = match &args.cache {
        Some(dir) => match ExperimentService::with_cache_dir(executor, dir) {
            Ok(service) => {
                eprintln!(
                    "comet-serviced: loaded {} cached cell(s) from {}",
                    service.stats().loaded_from_disk,
                    dir.display()
                );
                service
            }
            Err(error) => {
                eprintln!("error: could not open cache dir {}: {error}", dir.display());
                std::process::exit(1);
            }
        },
        None => ExperimentService::new(executor),
    };
    let daemon = Daemon::new(Arc::new(service), args.job_workers);

    let outcome = match &args.socket {
        Some(path) => {
            #[cfg(unix)]
            {
                eprintln!("comet-serviced: listening on {}", path.display());
                daemon.serve_unix(path)
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                eprintln!("error: --socket requires a Unix platform; use --stdin");
                std::process::exit(2);
            }
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            daemon.serve_session(stdin.lock(), stdout.lock())
        }
    };
    if let Err(error) = outcome {
        eprintln!("comet-serviced: fatal: {error}");
        std::process::exit(1);
    }
}
