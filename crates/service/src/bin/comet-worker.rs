//! The fleet worker binary.
//!
//! ```text
//! comet-worker --connect tcp://HOST:PORT [--threads N] [--heartbeat-ms N]
//!              [--backoff-ms N] [--max-reconnects N]
//! ```
//!
//! Connects out to a `comet-serviced --listen` coordinator, registers with
//! its capability set (threads, cell-key schema), pulls leased cells,
//! simulates them, and streams results back. On a lost connection it
//! reconnects with jittered exponential backoff and re-registers under a
//! fresh worker id; the coordinator requeues anything the old id held.
//!
//! Exit codes: `0` — coordinator drained cleanly; `3` — reconnect budget
//! spent without ever registering (coordinator unreachable); `1` — fatal
//! protocol error (e.g. the coordinator speaks a different cell-key schema).

use comet_service::{run_worker, WorkerConfig};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn parse_args() -> WorkerConfig {
    let mut config = WorkerConfig { max_reconnects: Some(60), ..WorkerConfig::default() };
    config.identity = u64::from(std::process::id());
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            })
        };
        let parse_count = |flag: &str, text: String| -> u64 {
            match text.parse::<u64>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    eprintln!("error: invalid {flag} value");
                    std::process::exit(2);
                }
            }
        };
        match arg.as_str() {
            "--connect" => {
                let spec = value("--connect");
                match comet_service::protocol::parse_tcp_spec(&spec) {
                    Some(addr) => config.addr = addr.to_string(),
                    None => {
                        eprintln!("error: --connect expects tcp://HOST:PORT, got {spec:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--threads" => config.threads = parse_count("--threads", value("--threads")) as usize,
            "--heartbeat-ms" => config.heartbeat_ms = parse_count("--heartbeat-ms", value("--heartbeat-ms")),
            "--backoff-ms" => config.backoff_ms = parse_count("--backoff-ms", value("--backoff-ms")),
            "--max-reconnects" => {
                config.max_reconnects =
                    Some(parse_count("--max-reconnects", value("--max-reconnects")) as u32)
            }
            "--help" | "-h" => {
                println!(
                    "usage: comet-worker --connect tcp://HOST:PORT [--threads N] \
                     [--heartbeat-ms N] [--backoff-ms N] [--max-reconnects N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    if config.addr.is_empty() {
        eprintln!("error: --connect tcp://HOST:PORT is required");
        std::process::exit(2);
    }
    config
}

fn main() {
    let config = parse_args();
    let stop = Arc::new(AtomicBool::new(false));
    eprintln!(
        "comet-worker[{}]: connecting to tcp://{} ({} thread(s))",
        config.identity, config.addr, config.threads
    );
    match run_worker(&config, &stop) {
        Ok(report) => {
            eprintln!(
                "comet-worker[{}]: done — {} completed, {} failed, {} stale, \
                 {} registration(s), {} reconnect(s)",
                config.identity,
                report.completed,
                report.failed,
                report.stale,
                report.registrations,
                report.reconnects
            );
            if report.registrations == 0 {
                eprintln!("comet-worker[{}]: never reached the coordinator", config.identity);
                std::process::exit(3);
            }
        }
        Err(error) => {
            eprintln!("comet-worker[{}]: fatal: {error}", config.identity);
            std::process::exit(1);
        }
    }
}
