//! The long-running experiment daemon.
//!
//! Connections (Unix-domain socket, or a single stdin/stdout session) read
//! one JSON request per line. `run` requests are enqueued on the shared
//! priority [`JobQueue`] and executed by a worker pool; each connection
//! blocks on its own request's completion before reading its next line, so
//! the *queue* arbitrates between clients (higher-priority sweeps from one
//! client overtake queued lower-priority sweeps from another) while each
//! client stays strictly ordered. `ping` / `stats` / `shutdown` are answered
//! inline without queueing.
//!
//! Connections are **accepted concurrently**: every Unix-socket connection
//! gets its own handler thread over the shared [`ExperimentService`], so an
//! idle or slow client never blocks another client's `ping` or queued sweep
//! (historically the accept loop served one connection at a time and clients
//! queued on `connect`). The accept loop polls so a `shutdown` received on
//! any connection stops the daemon without waiting for a further connection,
//! and handler reads use a timeout so open idle connections observe the
//! shutdown flag promptly instead of pinning the daemon.
//!
//! ## Admission control and drain
//!
//! The queue is bounded ([`DEFAULT_QUEUE_BOUND`] unless overridden with
//! [`Daemon::with_queue_bound`]): a `run` arriving while the queue is full
//! is **shed** with a typed `overloaded` error response (carrying a
//! `retry_after_ms` hint) instead of growing the queue without limit —
//! clients retry with jittered exponential backoff. At shutdown the queue
//! is closed and **drained**: in-flight sweeps finish normally, while
//! queued-but-unstarted jobs each receive a clean `shutting_down` error
//! response rather than being silently dropped.
//!
//! ## The fleet coordinator
//!
//! With a [`Fleet`] attached ([`Daemon::with_fleet`]) the daemon also
//! speaks the fleet side of the protocol — `register` / `pull` /
//! `heartbeat` / `complete` — on every listener (workers usually arrive
//! over TCP via [`Daemon::serve`], but the ops work on any connection).
//! Each connection remembers the worker registered on it: when the
//! connection drops, the worker's leases expire immediately and its cells
//! requeue, which is what makes a SIGKILLed worker's cells complete
//! elsewhere without waiting out the heartbeat timeout. `shutdown` drains
//! the fleet alongside the queue, so leased cells resolve as typed
//! `shutting_down` rejections instead of hanging.

use crate::error::ServiceError;
use crate::fleet::{Fleet, PullOutcome};
use crate::protocol::{self, LineConn, LineEvent, Op, Request};
use crate::queue::{JobQueue, PopWait, Push};
use crate::service::ExperimentService;
use crate::store;
use std::io::{BufRead, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};

/// Queued `run` jobs tolerated before admission control sheds new ones.
pub const DEFAULT_QUEUE_BOUND: usize = 1024;

/// One queued `run` job: the request plus the channel its response goes to.
struct Job {
    request: Request,
    reply: mpsc::Sender<String>,
}

/// The daemon: a shared service, a bounded priority queue, and a worker pool.
pub struct Daemon {
    service: Arc<ExperimentService>,
    queue: Arc<JobQueue<Job>>,
    shutdown: Arc<AtomicBool>,
    job_workers: usize,
    fleet: Option<Arc<Fleet>>,
}

impl Daemon {
    /// A daemon over `service` with `job_workers` concurrent sweep executors
    /// and the default admission bound. One worker (the default for the
    /// binary) gives strict priority order; more workers trade ordering for
    /// sweep-level concurrency (cell-level work is still deduplicated by the
    /// service).
    pub fn new(service: Arc<ExperimentService>, job_workers: usize) -> Self {
        Self::with_queue_bound(service, job_workers, DEFAULT_QUEUE_BOUND)
    }

    /// [`new`](Self::new) with an explicit admission bound: `run` requests
    /// arriving while `queue_bound` jobs are already queued are shed with a
    /// typed `overloaded` response.
    pub fn with_queue_bound(service: Arc<ExperimentService>, job_workers: usize, queue_bound: usize) -> Self {
        Daemon {
            service,
            queue: Arc::new(JobQueue::bounded(queue_bound)),
            shutdown: Arc::new(AtomicBool::new(false)),
            job_workers: job_workers.max(1),
            fleet: None,
        }
    }

    /// Attaches a fleet coordinator: the daemon answers fleet ops on every
    /// listener and the service offers cells to remote workers first. The
    /// same `Arc` is attached to the service so dispatch and stats agree.
    pub fn with_fleet(mut self, fleet: Arc<Fleet>) -> Self {
        self.service.attach_fleet(fleet.clone());
        self.fleet = Some(fleet);
        self
    }

    /// The attached fleet coordinator, if any.
    pub fn fleet(&self) -> Option<&Arc<Fleet>> {
        self.fleet.as_ref()
    }

    /// The shared service (for tests and in-process callers).
    pub fn service(&self) -> &Arc<ExperimentService> {
        &self.service
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub fn queued_jobs(&self) -> usize {
        self.queue.len()
    }

    /// Whether `shutdown` has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn spawn_workers<'scope>(&self, scope: &'scope std::thread::Scope<'scope, '_>) {
        for _ in 0..self.job_workers {
            let queue = self.queue.clone();
            let service = self.service.clone();
            let shutdown = self.shutdown.clone();
            scope.spawn(move || {
                loop {
                    // A bounded wait so a worker parked on an empty queue
                    // still observes the shutdown flag even if no one closed
                    // the queue (a defensive backstop: `begin_shutdown`
                    // normally closes it).
                    let job = match queue.pop_timeout(std::time::Duration::from_millis(200)) {
                        PopWait::Job(job) => job,
                        PopWait::TimedOut => {
                            if shutdown.load(Ordering::Relaxed) {
                                return;
                            }
                            continue;
                        }
                        PopWait::Closed => return,
                    };
                    // A panicking simulation must not kill the worker: the
                    // service's claim guard has already released the cell
                    // claims during unwind, so catching here turns the panic
                    // into an error response and keeps the queue draining.
                    let request = job.request;
                    let id = request.id;
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        protocol::handle_request(&service, &request).0
                    }));
                    let line = outcome.unwrap_or_else(|_| {
                        protocol::error_response(
                            id,
                            &ServiceError::Protocol("internal error: request execution panicked".to_string()),
                        )
                    });
                    // A dropped receiver (client hung up) is not an error.
                    let _ = job.reply.send(line);
                }
            });
        }
    }

    /// Closes the queue and rejects every queued-but-unstarted job with a
    /// clean `shutting_down` response. In-flight jobs (already popped by a
    /// worker) finish normally; their connections get real responses.
    fn reject_queued(&self) {
        for job in self.queue.close_and_drain() {
            let line = protocol::error_response(job.request.id, &ServiceError::ShuttingDown);
            let _ = job.reply.send(line);
        }
    }

    /// Starts the shutdown sequence: flag, fleet drain (leased cells resolve
    /// as typed `shutting_down` rejections), queue drain. Idempotent.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(fleet) = &self.fleet {
            fleet.drain();
        }
        self.reject_queued();
    }

    /// Computes the response line for one request line. Returns `None` for
    /// blank lines; the boolean is `true` when the request was `shutdown`
    /// (the connection should close after writing the response).
    /// `registered` is this connection's fleet-worker registration, updated
    /// on `register` and used by the caller's disconnect cleanup.
    fn respond(&self, line: &str, registered: &mut Option<u64>) -> Option<(String, bool)> {
        if line.trim().is_empty() {
            return None;
        }
        Some(match protocol::parse_request(line) {
            Err(error) => (protocol::error_response(0, &error), false),
            Ok(request) => match &request.op {
                Op::Run { priority, .. } => {
                    let priority = *priority;
                    let id = request.id;
                    let (tx, rx) = mpsc::channel();
                    let response = match self.queue.push(Job { request, reply: tx }, priority) {
                        Push::Queued => rx.recv().unwrap_or_else(|_| {
                            protocol::error_response(
                                id,
                                &ServiceError::Protocol("worker dropped the request".to_string()),
                            )
                        }),
                        Push::Overloaded { queued, bound } => {
                            self.service.note_shed();
                            protocol::error_response(id, &ServiceError::Overloaded { queued, bound })
                        }
                        Push::Closed => protocol::error_response(id, &ServiceError::ShuttingDown),
                    };
                    (response, false)
                }
                Op::Shutdown => {
                    let (response, _) = protocol::handle_request(&self.service, &request);
                    self.begin_shutdown();
                    (response, true)
                }
                Op::Register { .. } | Op::Pull { .. } | Op::Heartbeat { .. } | Op::Complete { .. }
                    if self.fleet.is_some() =>
                {
                    (self.fleet_response(&request, registered), false)
                }
                _ => (protocol::handle_request(&self.service, &request).0, false),
            },
        })
    }

    /// Answers one fleet op against the attached coordinator.
    fn fleet_response(&self, request: &Request, registered: &mut Option<u64>) -> String {
        let fleet = self.fleet.as_ref().expect("caller checked the fleet exists");
        let id = request.id;
        match &request.op {
            Op::Register { threads, schema } => match protocol::check_schema(schema) {
                Err(error) => protocol::error_response(id, &error),
                Ok(()) => {
                    let worker = fleet.register(*threads);
                    *registered = Some(worker);
                    protocol::register_response(id, worker, fleet.lease_timeout_ms())
                }
            },
            Op::Pull { worker, wait_ms } => match fleet.pull(*worker, *wait_ms) {
                PullOutcome::Job(key, redeliveries, payload) => {
                    protocol::pull_response(id, Some((key, redeliveries, &payload)))
                }
                PullOutcome::Empty => protocol::pull_response(id, None),
                PullOutcome::UnknownWorker => protocol::error_response(
                    id,
                    &ServiceError::Protocol("unknown worker (lease timeout?); re-register".to_string()),
                ),
                PullOutcome::Draining => protocol::error_response(id, &ServiceError::ShuttingDown),
            },
            Op::Heartbeat { worker, cells, busy } => {
                let live = fleet.heartbeat(*worker);
                // The piggybacked snapshot feeds the per-worker scrape
                // gauges; a dead worker's snapshot is ignored so its series
                // never resurrect after disconnect cleanup.
                if live {
                    if let (Some(cells), Some(busy)) = (cells, busy) {
                        fleet.note_worker_snapshot(*worker, *cells, *busy);
                    }
                }
                protocol::heartbeat_response(id, live)
            }
            Op::Complete { worker, key, outcome } => {
                let outcome = match outcome {
                    // An undecodable projection is reported as a failure so
                    // the service re-runs the cell locally — the cache must
                    // never absorb a result the coordinator cannot read.
                    Ok(value) => store::run_result_from_value(value)
                        .ok_or_else(|| "undecodable result projection".to_string()),
                    Err(message) => Err(message.clone()),
                };
                protocol::complete_response(id, fleet.complete(*worker, *key, outcome))
            }
            _ => unreachable!("fleet_response is only called for fleet ops"),
        }
    }

    /// Serves one framed connection until EOF, `shutdown`, or an I/O error,
    /// then cleans up any fleet-worker registration the connection carried
    /// (dropping a worker's connection expires its leases immediately).
    fn serve_conn<S: Read + Write>(&self, stream: S) -> std::io::Result<()> {
        let mut conn = LineConn::new(stream);
        let mut registered: Option<u64> = None;
        let outcome = self.conn_loop(&mut conn, &mut registered);
        if let (Some(worker), Some(fleet)) = (registered, &self.fleet) {
            fleet.disconnect(worker);
        }
        outcome
    }

    fn conn_loop<S: Read + Write>(
        &self,
        conn: &mut LineConn<S>,
        registered: &mut Option<u64>,
    ) -> std::io::Result<()> {
        loop {
            if self.is_shutdown() {
                return Ok(());
            }
            match conn.read_event()? {
                LineEvent::Line(line) => {
                    let Some((response, closing)) = self.respond(&line, registered) else {
                        continue;
                    };
                    conn.write_line(&response)?;
                    if closing || self.is_shutdown() {
                        return Ok(());
                    }
                }
                // The read timeout makes idle connections re-check the
                // shutdown flag instead of pinning the daemon open.
                LineEvent::TimedOut => continue,
                LineEvent::Eof { partial } => {
                    // EOF with an unterminated final line: answer it anyway —
                    // a client may shut down its write side and still read.
                    if let Some(line) = partial {
                        if let Some((response, _)) = self.respond(&line, registered) {
                            conn.write_line(&response)?;
                        }
                    }
                    return Ok(());
                }
            }
        }
    }

    /// Serves a single session on arbitrary reader/writer pairs (stdin mode,
    /// and the in-process protocol tests). Returns on EOF or `shutdown`.
    pub fn serve_session(&self, reader: impl BufRead, writer: impl Write) -> std::io::Result<()> {
        std::thread::scope(|scope| {
            self.spawn_workers(scope);
            let outcome = self.serve_conn(Duplex { reader, writer });
            // EOF without an explicit shutdown still ends the session; any
            // still-queued jobs are rejected cleanly, not dropped.
            self.reject_queued();
            outcome
        })
    }

    /// Binds `path` and serves Unix-socket connections until `shutdown`,
    /// accepting connections concurrently: each connection runs on its own
    /// handler thread over the shared service, so clients never serialize at
    /// the accept loop — they multiplex through the priority queue instead.
    #[cfg(unix)]
    pub fn serve_unix(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.serve(Some(path), None, None)
    }

    /// Binds the requested listeners (a Unix socket path, a TCP address, or
    /// both) and serves until `shutdown`. The TCP listener is how fleet
    /// workers usually arrive; both listeners answer the full protocol.
    /// `metrics_addr`, if given, additionally serves the Prometheus scrape
    /// endpoint over plain HTTP on that TCP address.
    #[cfg(unix)]
    pub fn serve(
        &self,
        unix_path: Option<&std::path::Path>,
        tcp_addr: Option<&str>,
        metrics_addr: Option<&str>,
    ) -> std::io::Result<()> {
        let unix = match unix_path {
            Some(path) => {
                // A stale socket file from a previous run would make bind fail.
                let _ = std::fs::remove_file(path);
                Some(std::os::unix::net::UnixListener::bind(path)?)
            }
            None => None,
        };
        let tcp = tcp_addr.map(std::net::TcpListener::bind).transpose()?;
        let metrics = metrics_addr.map(std::net::TcpListener::bind).transpose()?;
        let outcome = self.serve_listeners(unix, tcp, metrics);
        if let Some(path) = unix_path {
            let _ = std::fs::remove_file(path);
        }
        outcome
    }

    /// [`serve`](Self::serve) over pre-bound listeners (tests bind port 0
    /// themselves to learn the address).
    #[cfg(unix)]
    pub fn serve_listeners(
        &self,
        unix: Option<std::os::unix::net::UnixListener>,
        tcp: Option<std::net::TcpListener>,
        metrics: Option<std::net::TcpListener>,
    ) -> std::io::Result<()> {
        // Poll the listeners instead of blocking in accept: a `shutdown`
        // received on any connection must end the loops without requiring
        // one more client to connect.
        if let Some(listener) = &unix {
            listener.set_nonblocking(true)?;
        }
        if let Some(listener) = &tcp {
            listener.set_nonblocking(true)?;
        }
        if let Some(listener) = &metrics {
            listener.set_nonblocking(true)?;
        }
        std::thread::scope(|scope| {
            self.spawn_workers(scope);
            let mut accepts = Vec::new();
            if let Some(listener) = &unix {
                accepts.push(scope.spawn(move || self.accept_unix(scope, listener)));
            }
            if let Some(listener) = &tcp {
                accepts.push(scope.spawn(move || self.accept_tcp(scope, listener)));
            }
            if let Some(listener) = &metrics {
                accepts.push(scope.spawn(move || self.accept_metrics(scope, listener)));
            }
            for accept in accepts {
                let _ = accept.join();
            }
            self.begin_shutdown();
            // The scope joins the handler threads; their read timeouts make
            // them observe the shutdown flag within one poll interval.
        });
        Ok(())
    }

    #[cfg(unix)]
    fn accept_unix<'scope>(
        &'scope self,
        scope: &'scope std::thread::Scope<'scope, '_>,
        listener: &std::os::unix::net::UnixListener,
    ) {
        while !self.is_shutdown() {
            match listener.accept() {
                Ok((stream, _)) => {
                    // A connection-level IO error (client hung up mid-write)
                    // never kills the daemon.
                    scope.spawn(move || {
                        if let Err(error) = self.handle_unix(stream) {
                            eprintln!("comet-serviced: connection error: {error}");
                        }
                    });
                }
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(25));
                }
                Err(error) => {
                    eprintln!("comet-serviced: accept error: {error}");
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
            }
        }
    }

    #[cfg(unix)]
    fn accept_tcp<'scope>(
        &'scope self,
        scope: &'scope std::thread::Scope<'scope, '_>,
        listener: &std::net::TcpListener,
    ) {
        while !self.is_shutdown() {
            match listener.accept() {
                Ok((stream, _)) => {
                    scope.spawn(move || {
                        if let Err(error) = self.handle_tcp(stream) {
                            eprintln!("comet-serviced: connection error: {error}");
                        }
                    });
                }
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(25));
                }
                Err(error) => {
                    eprintln!("comet-serviced: accept error: {error}");
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
            }
        }
    }

    /// Accept loop for the Prometheus scrape listener. Each connection gets
    /// one hand-rolled HTTP response and is closed — scrape endpoints need
    /// no keep-alive, routing, or method handling.
    #[cfg(unix)]
    fn accept_metrics<'scope>(
        &'scope self,
        scope: &'scope std::thread::Scope<'scope, '_>,
        listener: &std::net::TcpListener,
    ) {
        while !self.is_shutdown() {
            match listener.accept() {
                Ok((stream, _)) => {
                    scope.spawn(move || {
                        if let Err(error) = self.handle_metrics(stream) {
                            eprintln!("comet-serviced: metrics connection error: {error}");
                        }
                    });
                }
                Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(25));
                }
                Err(error) => {
                    eprintln!("comet-serviced: metrics accept error: {error}");
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
            }
        }
    }

    /// Answers one scrape connection with an HTTP/1.0 response carrying the
    /// full text exposition. The request head is drained best-effort and
    /// ignored: the endpoint is read-only and serves the same body for every
    /// path, so even a bare `GET /metrics` with no headers — or no request
    /// at all — gets the exposition.
    #[cfg(unix)]
    fn handle_metrics(&self, mut stream: std::net::TcpStream) -> std::io::Result<()> {
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(std::time::Duration::from_millis(500)))?;
        stream.set_write_timeout(Some(std::time::Duration::from_secs(30)))?;
        let mut head = [0u8; 1024];
        let _ = stream.read(&mut head);
        let body = self.service.render_metrics();
        let response = format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(response.as_bytes())?;
        stream.flush()
    }

    #[cfg(unix)]
    fn handle_unix(&self, stream: std::os::unix::net::UnixStream) -> std::io::Result<()> {
        // Accepted sockets can inherit the listener's non-blocking flag.
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
        // A client that stops reading must not pin the daemon open: a write
        // that cannot complete within the (generous) timeout errors out and
        // drops the connection, so shutdown never waits on a dead peer.
        stream.set_write_timeout(Some(std::time::Duration::from_secs(30)))?;
        self.serve_conn(stream)
    }

    #[cfg(unix)]
    fn handle_tcp(&self, stream: std::net::TcpStream) -> std::io::Result<()> {
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
        stream.set_write_timeout(Some(std::time::Duration::from_secs(30)))?;
        stream.set_nodelay(true).ok();
        self.serve_conn(stream)
    }
}

/// A reader/writer pair masquerading as one stream, so stdin sessions frame
/// through the same [`LineConn`] codec as socket connections.
struct Duplex<R, W> {
    reader: R,
    writer: W,
}

impl<R: Read, W: Write> Read for Duplex<R, W> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.reader.read(buf)
    }
}

impl<R: Read, W: Write> Write for Duplex<R, W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.writer.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_sim::experiments::ParallelExecutor;

    fn daemon() -> Daemon {
        Daemon::new(Arc::new(ExperimentService::new(ParallelExecutor::new())), 1)
    }

    fn session(input: &str) -> Vec<String> {
        let daemon = daemon();
        let mut output = Vec::new();
        daemon.serve_session(std::io::BufReader::new(input.as_bytes()), &mut output).unwrap();
        String::from_utf8(output).unwrap().lines().map(str::to_string).collect()
    }

    #[test]
    fn ping_and_stats_answer_inline() {
        let lines = session("{\"op\":\"ping\",\"id\":1}\n{\"op\":\"stats\",\"id\":2}\n");
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"pong\":true"), "{}", lines[0]);
        assert!(lines[1].contains("\"cells_requested\":0"), "{}", lines[1]);
    }

    #[test]
    fn malformed_lines_get_error_responses_and_do_not_kill_the_session() {
        let lines = session("garbage\n{\"op\":\"ping\",\"id\":9}\n");
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ok\":false"));
        assert!(lines[1].contains("\"pong\":true"));
    }

    #[test]
    fn run_requests_execute_through_the_queue() {
        let lines = session(
            "{\"op\":\"run\",\"id\":5,\"scope\":\"smoke\",\"targets\":[\"fig17\"]}\n{\"op\":\"shutdown\",\"id\":6}\n",
        );
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"id\":5") && lines[0].contains("\"ok\":true"), "{}", lines[0]);
        assert!(lines[0].contains("\"fig17\""), "{}", lines[0]);
        assert!(lines[1].contains("\"shutdown\":true"), "{}", lines[1]);
    }

    /// An idle connection must not block other clients: with the historical
    /// one-at-a-time accept loop this test deadlocks (client B queues on
    /// connect behind idle client A); with concurrent accept B is served
    /// immediately and its `shutdown` also stops the daemon while A is still
    /// connected.
    #[cfg(unix)]
    #[test]
    fn concurrent_connections_are_served_past_an_idle_client() {
        use std::io::{BufRead, BufReader, Write};
        use std::os::unix::net::UnixStream;

        let dir = std::env::temp_dir().join(format!("comet-daemon-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("daemon.sock");
        let daemon = Arc::new(daemon());
        let serving = {
            let daemon = daemon.clone();
            let socket = socket.clone();
            std::thread::spawn(move || daemon.serve_unix(&socket))
        };
        // Wait for the socket to appear.
        for _ in 0..100 {
            if socket.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        // Client A connects and stays silent.
        let idle = UnixStream::connect(&socket).unwrap();
        // Client B must be served regardless.
        let mut busy = UnixStream::connect(&socket).unwrap();
        writeln!(busy, "{{\"op\":\"ping\",\"id\":1}}").unwrap();
        let mut reader = BufReader::new(busy.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"pong\":true"), "{line}");
        // B shuts the daemon down while A is still connected.
        writeln!(busy, "{{\"op\":\"shutdown\",\"id\":2}}").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"shutdown\":true"), "{line}");
        serving.join().unwrap().unwrap();
        assert!(daemon.is_shutdown());
        drop(idle);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A final request line without a trailing newline (client shuts its
    /// write side at EOF) must still be answered, like the stdin session
    /// path answers it.
    #[cfg(unix)]
    #[test]
    fn unterminated_final_line_is_answered_at_eof() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::Shutdown;
        use std::os::unix::net::UnixStream;

        let dir = std::env::temp_dir().join(format!("comet-daemon-eof-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("daemon.sock");
        let daemon = Arc::new(daemon());
        let serving = {
            let daemon = daemon.clone();
            let socket = socket.clone();
            std::thread::spawn(move || daemon.serve_unix(&socket))
        };
        for _ in 0..100 {
            if socket.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let mut client = UnixStream::connect(&socket).unwrap();
        write!(client, "{{\"op\":\"ping\",\"id\":7}}").unwrap(); // no trailing newline
        client.shutdown(Shutdown::Write).unwrap();
        let mut line = String::new();
        BufReader::new(client.try_clone().unwrap()).read_line(&mut line).unwrap();
        assert!(line.contains("\"pong\":true"), "{line}");
        drop(client);
        // Stop the daemon through a second connection.
        let mut stopper = UnixStream::connect(&socket).unwrap();
        writeln!(stopper, "{{\"op\":\"shutdown\",\"id\":8}}").unwrap();
        let mut response = String::new();
        BufReader::new(stopper.try_clone().unwrap()).read_line(&mut response).unwrap();
        serving.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
