//! The long-running experiment daemon.
//!
//! Connections (Unix-domain socket, or a single stdin/stdout session) read
//! one JSON request per line. `run` requests are enqueued on the shared
//! priority [`JobQueue`] and executed by a worker pool; each connection
//! blocks on its own request's completion before reading its next line, so
//! the *queue* arbitrates between clients (higher-priority sweeps from one
//! client overtake queued lower-priority sweeps from another) while each
//! client stays strictly ordered. `ping` / `stats` / `shutdown` are answered
//! inline without queueing.

use crate::protocol::{self, Op, Request};
use crate::queue::JobQueue;
use crate::service::ExperimentService;
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};

/// One queued `run` job: the request plus the channel its response goes to.
struct Job {
    request: Request,
    reply: mpsc::Sender<String>,
}

/// The daemon: a shared service, a priority queue, and a worker pool.
pub struct Daemon {
    service: Arc<ExperimentService>,
    queue: Arc<JobQueue<Job>>,
    shutdown: Arc<AtomicBool>,
    job_workers: usize,
}

impl Daemon {
    /// A daemon over `service` with `job_workers` concurrent sweep executors.
    /// One worker (the default for the binary) gives strict priority order;
    /// more workers trade ordering for sweep-level concurrency (cell-level
    /// work is still deduplicated by the service).
    pub fn new(service: Arc<ExperimentService>, job_workers: usize) -> Self {
        Daemon {
            service,
            queue: Arc::new(JobQueue::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
            job_workers: job_workers.max(1),
        }
    }

    /// The shared service (for tests and in-process callers).
    pub fn service(&self) -> &Arc<ExperimentService> {
        &self.service
    }

    /// Whether `shutdown` has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn spawn_workers<'scope>(&self, scope: &'scope std::thread::Scope<'scope, '_>) {
        for _ in 0..self.job_workers {
            let queue = self.queue.clone();
            let service = self.service.clone();
            scope.spawn(move || {
                while let Some(job) = queue.pop() {
                    // A panicking simulation must not kill the worker: the
                    // service's claim guard has already released the cell
                    // claims during unwind, so catching here turns the panic
                    // into an error response and keeps the queue draining.
                    let request = job.request;
                    let id = request.id;
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        protocol::handle_request(&service, &request).0
                    }));
                    let line = outcome.unwrap_or_else(|_| {
                        protocol::error_response(id, "internal error: request execution panicked")
                    });
                    // A dropped receiver (client hung up) is not an error.
                    let _ = job.reply.send(line);
                }
            });
        }
    }

    /// Handles one connection's request stream until EOF or shutdown.
    fn handle_connection(&self, reader: impl BufRead, mut writer: impl Write) -> std::io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let response = match protocol::parse_request(&line) {
                Err(message) => protocol::error_response(0, &message),
                Ok(request) => match &request.op {
                    Op::Run { priority, .. } => {
                        let priority = *priority;
                        let (tx, rx) = mpsc::channel();
                        if self.queue.push(Job { request, reply: tx }, priority) {
                            rx.recv()
                                .unwrap_or_else(|_| protocol::error_response(0, "worker dropped the request"))
                        } else {
                            protocol::error_response(request_id_hint(&line), "daemon is shutting down")
                        }
                    }
                    Op::Shutdown => {
                        let (line, _) = protocol::handle_request(&self.service, &request);
                        self.shutdown.store(true, Ordering::Relaxed);
                        self.queue.close();
                        writeln!(writer, "{line}")?;
                        writer.flush()?;
                        return Ok(());
                    }
                    _ => protocol::handle_request(&self.service, &request).0,
                },
            };
            writeln!(writer, "{response}")?;
            writer.flush()?;
            if self.is_shutdown() {
                break;
            }
        }
        Ok(())
    }

    /// Serves a single session on arbitrary reader/writer pairs (stdin mode,
    /// and the in-process protocol tests). Returns on EOF or `shutdown`.
    pub fn serve_session(&self, reader: impl BufRead, writer: impl Write) -> std::io::Result<()> {
        std::thread::scope(|scope| {
            self.spawn_workers(scope);
            let outcome = self.handle_connection(reader, writer);
            // EOF without an explicit shutdown still ends the session.
            self.queue.close();
            outcome
        })
    }

    /// Binds `path` and serves Unix-socket connections until `shutdown`.
    #[cfg(unix)]
    pub fn serve_unix(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::os::unix::net::UnixListener;
        // A stale socket file from a previous run would make bind fail.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        std::thread::scope(|scope| {
            self.spawn_workers(scope);
            for connection in listener.incoming() {
                // One connection at a time: connections multiplex through
                // the priority queue, and the accept loop staying
                // single-threaded keeps lifetime handling simple. Clients
                // queue on connect. A connection-level IO error (client hung
                // up mid-write) never kills the daemon.
                let outcome = connection.and_then(|stream| {
                    let reader = BufReader::new(stream.try_clone()?);
                    self.handle_connection(reader, stream)
                });
                if let Err(error) = outcome {
                    eprintln!("comet-serviced: connection error: {error}");
                }
                // Checked after handling so a `shutdown` request ends the
                // accept loop without waiting for another connection.
                if self.is_shutdown() {
                    break;
                }
            }
            self.queue.close();
        });
        let _ = std::fs::remove_file(path);
        Ok(())
    }
}

/// Best-effort id extraction for error paths where the request was parsed
/// but can no longer be moved.
fn request_id_hint(line: &str) -> u64 {
    crate::json::parse(line)
        .ok()
        .and_then(|v| crate::json::get(&v, "id").and_then(crate::json::as_u64))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_sim::experiments::ParallelExecutor;

    fn daemon() -> Daemon {
        Daemon::new(Arc::new(ExperimentService::new(ParallelExecutor::new())), 1)
    }

    fn session(input: &str) -> Vec<String> {
        let daemon = daemon();
        let mut output = Vec::new();
        daemon.serve_session(BufReader::new(input.as_bytes()), &mut output).unwrap();
        String::from_utf8(output).unwrap().lines().map(str::to_string).collect()
    }

    #[test]
    fn ping_and_stats_answer_inline() {
        let lines = session("{\"op\":\"ping\",\"id\":1}\n{\"op\":\"stats\",\"id\":2}\n");
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"pong\":true"), "{}", lines[0]);
        assert!(lines[1].contains("\"cells_requested\":0"), "{}", lines[1]);
    }

    #[test]
    fn malformed_lines_get_error_responses_and_do_not_kill_the_session() {
        let lines = session("garbage\n{\"op\":\"ping\",\"id\":9}\n");
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ok\":false"));
        assert!(lines[1].contains("\"pong\":true"));
    }

    #[test]
    fn run_requests_execute_through_the_queue() {
        let lines = session(
            "{\"op\":\"run\",\"id\":5,\"scope\":\"smoke\",\"targets\":[\"fig17\"]}\n{\"op\":\"shutdown\",\"id\":6}\n",
        );
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"id\":5") && lines[0].contains("\"ok\":true"), "{}", lines[0]);
        assert!(lines[0].contains("\"fig17\""), "{}", lines[0]);
        assert!(lines[1].contains("\"shutdown\":true"), "{}", lines[1]);
    }
}
