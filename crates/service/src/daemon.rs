//! The long-running experiment daemon.
//!
//! Connections (Unix-domain socket, or a single stdin/stdout session) read
//! one JSON request per line. `run` requests are enqueued on the shared
//! priority [`JobQueue`] and executed by a worker pool; each connection
//! blocks on its own request's completion before reading its next line, so
//! the *queue* arbitrates between clients (higher-priority sweeps from one
//! client overtake queued lower-priority sweeps from another) while each
//! client stays strictly ordered. `ping` / `stats` / `shutdown` are answered
//! inline without queueing.
//!
//! Connections are **accepted concurrently**: every Unix-socket connection
//! gets its own handler thread over the shared [`ExperimentService`], so an
//! idle or slow client never blocks another client's `ping` or queued sweep
//! (historically the accept loop served one connection at a time and clients
//! queued on `connect`). The accept loop polls so a `shutdown` received on
//! any connection stops the daemon without waiting for a further connection,
//! and handler reads use a timeout so open idle connections observe the
//! shutdown flag promptly instead of pinning the daemon.
//!
//! ## Admission control and drain
//!
//! The queue is bounded ([`DEFAULT_QUEUE_BOUND`] unless overridden with
//! [`Daemon::with_queue_bound`]): a `run` arriving while the queue is full
//! is **shed** with a typed `overloaded` error response (carrying a
//! `retry_after_ms` hint) instead of growing the queue without limit —
//! clients retry with jittered exponential backoff. At shutdown the queue
//! is closed and **drained**: in-flight sweeps finish normally, while
//! queued-but-unstarted jobs each receive a clean `shutting_down` error
//! response rather than being silently dropped.

use crate::error::ServiceError;
use crate::protocol::{self, Op, Request};
use crate::queue::{JobQueue, Push};
use crate::service::ExperimentService;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};

/// Queued `run` jobs tolerated before admission control sheds new ones.
pub const DEFAULT_QUEUE_BOUND: usize = 1024;

/// One queued `run` job: the request plus the channel its response goes to.
struct Job {
    request: Request,
    reply: mpsc::Sender<String>,
}

/// The daemon: a shared service, a bounded priority queue, and a worker pool.
pub struct Daemon {
    service: Arc<ExperimentService>,
    queue: Arc<JobQueue<Job>>,
    shutdown: Arc<AtomicBool>,
    job_workers: usize,
}

impl Daemon {
    /// A daemon over `service` with `job_workers` concurrent sweep executors
    /// and the default admission bound. One worker (the default for the
    /// binary) gives strict priority order; more workers trade ordering for
    /// sweep-level concurrency (cell-level work is still deduplicated by the
    /// service).
    pub fn new(service: Arc<ExperimentService>, job_workers: usize) -> Self {
        Self::with_queue_bound(service, job_workers, DEFAULT_QUEUE_BOUND)
    }

    /// [`new`](Self::new) with an explicit admission bound: `run` requests
    /// arriving while `queue_bound` jobs are already queued are shed with a
    /// typed `overloaded` response.
    pub fn with_queue_bound(service: Arc<ExperimentService>, job_workers: usize, queue_bound: usize) -> Self {
        Daemon {
            service,
            queue: Arc::new(JobQueue::bounded(queue_bound)),
            shutdown: Arc::new(AtomicBool::new(false)),
            job_workers: job_workers.max(1),
        }
    }

    /// The shared service (for tests and in-process callers).
    pub fn service(&self) -> &Arc<ExperimentService> {
        &self.service
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub fn queued_jobs(&self) -> usize {
        self.queue.len()
    }

    /// Whether `shutdown` has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn spawn_workers<'scope>(&self, scope: &'scope std::thread::Scope<'scope, '_>) {
        for _ in 0..self.job_workers {
            let queue = self.queue.clone();
            let service = self.service.clone();
            scope.spawn(move || {
                while let Some(job) = queue.pop() {
                    // A panicking simulation must not kill the worker: the
                    // service's claim guard has already released the cell
                    // claims during unwind, so catching here turns the panic
                    // into an error response and keeps the queue draining.
                    let request = job.request;
                    let id = request.id;
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        protocol::handle_request(&service, &request).0
                    }));
                    let line = outcome.unwrap_or_else(|_| {
                        protocol::error_response(
                            id,
                            &ServiceError::Protocol("internal error: request execution panicked".to_string()),
                        )
                    });
                    // A dropped receiver (client hung up) is not an error.
                    let _ = job.reply.send(line);
                }
            });
        }
    }

    /// Closes the queue and rejects every queued-but-unstarted job with a
    /// clean `shutting_down` response. In-flight jobs (already popped by a
    /// worker) finish normally; their connections get real responses.
    fn reject_queued(&self) {
        for job in self.queue.close_and_drain() {
            let line = protocol::error_response(job.request.id, &ServiceError::ShuttingDown);
            let _ = job.reply.send(line);
        }
    }

    /// Computes the response line for one request line. Returns `None` for
    /// blank lines; the boolean is `true` when the request was `shutdown`
    /// (the connection should close after writing the response).
    fn response_for(&self, line: &str) -> Option<(String, bool)> {
        if line.trim().is_empty() {
            return None;
        }
        Some(match protocol::parse_request(line) {
            Err(error) => (protocol::error_response(0, &error), false),
            Ok(request) => match &request.op {
                Op::Run { priority, .. } => {
                    let priority = *priority;
                    let id = request.id;
                    let (tx, rx) = mpsc::channel();
                    let response = match self.queue.push(Job { request, reply: tx }, priority) {
                        Push::Queued => rx.recv().unwrap_or_else(|_| {
                            protocol::error_response(
                                id,
                                &ServiceError::Protocol("worker dropped the request".to_string()),
                            )
                        }),
                        Push::Overloaded { queued, bound } => {
                            self.service.note_shed();
                            protocol::error_response(id, &ServiceError::Overloaded { queued, bound })
                        }
                        Push::Closed => protocol::error_response(id, &ServiceError::ShuttingDown),
                    };
                    (response, false)
                }
                Op::Shutdown => {
                    let (response, _) = protocol::handle_request(&self.service, &request);
                    self.shutdown.store(true, Ordering::Relaxed);
                    self.reject_queued();
                    (response, true)
                }
                _ => (protocol::handle_request(&self.service, &request).0, false),
            },
        })
    }

    /// Handles one connection's request stream until EOF or shutdown.
    fn handle_connection(&self, reader: impl BufRead, mut writer: impl Write) -> std::io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            let Some((response, closing)) = self.response_for(&line) else {
                continue;
            };
            writeln!(writer, "{response}")?;
            writer.flush()?;
            if closing || self.is_shutdown() {
                break;
            }
        }
        Ok(())
    }

    /// Serves a single session on arbitrary reader/writer pairs (stdin mode,
    /// and the in-process protocol tests). Returns on EOF or `shutdown`.
    pub fn serve_session(&self, reader: impl BufRead, writer: impl Write) -> std::io::Result<()> {
        std::thread::scope(|scope| {
            self.spawn_workers(scope);
            let outcome = self.handle_connection(reader, writer);
            // EOF without an explicit shutdown still ends the session; any
            // still-queued jobs are rejected cleanly, not dropped.
            self.reject_queued();
            outcome
        })
    }

    /// Binds `path` and serves Unix-socket connections until `shutdown`,
    /// accepting connections concurrently: each connection runs on its own
    /// handler thread over the shared service, so clients never serialize at
    /// the accept loop — they multiplex through the priority queue instead.
    #[cfg(unix)]
    pub fn serve_unix(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::os::unix::net::UnixListener;
        // A stale socket file from a previous run would make bind fail.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        // Poll the listener instead of blocking in accept: a `shutdown`
        // received on any connection must end the loop without requiring one
        // more client to connect.
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            self.spawn_workers(scope);
            while !self.is_shutdown() {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // A connection-level IO error (client hung up
                        // mid-write) never kills the daemon.
                        scope.spawn(move || {
                            if let Err(error) = self.handle_stream(stream) {
                                eprintln!("comet-serviced: connection error: {error}");
                            }
                        });
                    }
                    Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(25));
                    }
                    Err(error) => {
                        eprintln!("comet-serviced: accept error: {error}");
                        std::thread::sleep(std::time::Duration::from_millis(100));
                    }
                }
            }
            self.reject_queued();
            // The scope joins the handler threads; their read timeouts make
            // them observe the shutdown flag within one poll interval.
        });
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    /// Handles one Unix-socket connection on its own thread. Reads with a
    /// timeout and assembles lines manually (a `BufReader` may drop
    /// partially buffered data on a timeout error), so an idle connection
    /// re-checks the shutdown flag every poll interval instead of pinning
    /// the daemon open.
    #[cfg(unix)]
    fn handle_stream(&self, mut stream: std::os::unix::net::UnixStream) -> std::io::Result<()> {
        use std::io::Read;
        // Accepted sockets can inherit the listener's non-blocking flag.
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
        // A client that stops reading must not pin the daemon open: a write
        // that cannot complete within the (generous) timeout errors out and
        // drops the connection, so shutdown never waits on a dead peer.
        stream.set_write_timeout(Some(std::time::Duration::from_secs(30)))?;
        let mut pending: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            if self.is_shutdown() {
                return Ok(());
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF with an unterminated final line: answer it anyway,
                    // matching the `BufRead::lines`-based session path — a
                    // client may shut down its write side and still read.
                    let line = String::from_utf8_lossy(&pending).into_owned();
                    if let Some((response, _)) = self.response_for(&line) {
                        writeln!(stream, "{response}")?;
                        stream.flush()?;
                    }
                    return Ok(());
                }
                Ok(read) => {
                    pending.extend_from_slice(&chunk[..read]);
                    while let Some(newline) = pending.iter().position(|&b| b == b'\n') {
                        let line: Vec<u8> = pending.drain(..=newline).collect();
                        let line = String::from_utf8_lossy(&line[..newline]).into_owned();
                        if let Some((response, closing)) = self.response_for(&line) {
                            writeln!(stream, "{response}")?;
                            stream.flush()?;
                            if closing || self.is_shutdown() {
                                return Ok(());
                            }
                        }
                    }
                }
                Err(error)
                    if matches!(
                        error.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    continue;
                }
                Err(error) => return Err(error),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_sim::experiments::ParallelExecutor;

    fn daemon() -> Daemon {
        Daemon::new(Arc::new(ExperimentService::new(ParallelExecutor::new())), 1)
    }

    fn session(input: &str) -> Vec<String> {
        let daemon = daemon();
        let mut output = Vec::new();
        daemon.serve_session(std::io::BufReader::new(input.as_bytes()), &mut output).unwrap();
        String::from_utf8(output).unwrap().lines().map(str::to_string).collect()
    }

    #[test]
    fn ping_and_stats_answer_inline() {
        let lines = session("{\"op\":\"ping\",\"id\":1}\n{\"op\":\"stats\",\"id\":2}\n");
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"pong\":true"), "{}", lines[0]);
        assert!(lines[1].contains("\"cells_requested\":0"), "{}", lines[1]);
    }

    #[test]
    fn malformed_lines_get_error_responses_and_do_not_kill_the_session() {
        let lines = session("garbage\n{\"op\":\"ping\",\"id\":9}\n");
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ok\":false"));
        assert!(lines[1].contains("\"pong\":true"));
    }

    #[test]
    fn run_requests_execute_through_the_queue() {
        let lines = session(
            "{\"op\":\"run\",\"id\":5,\"scope\":\"smoke\",\"targets\":[\"fig17\"]}\n{\"op\":\"shutdown\",\"id\":6}\n",
        );
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"id\":5") && lines[0].contains("\"ok\":true"), "{}", lines[0]);
        assert!(lines[0].contains("\"fig17\""), "{}", lines[0]);
        assert!(lines[1].contains("\"shutdown\":true"), "{}", lines[1]);
    }

    /// An idle connection must not block other clients: with the historical
    /// one-at-a-time accept loop this test deadlocks (client B queues on
    /// connect behind idle client A); with concurrent accept B is served
    /// immediately and its `shutdown` also stops the daemon while A is still
    /// connected.
    #[cfg(unix)]
    #[test]
    fn concurrent_connections_are_served_past_an_idle_client() {
        use std::io::{BufRead, BufReader, Write};
        use std::os::unix::net::UnixStream;

        let dir = std::env::temp_dir().join(format!("comet-daemon-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("daemon.sock");
        let daemon = Arc::new(daemon());
        let serving = {
            let daemon = daemon.clone();
            let socket = socket.clone();
            std::thread::spawn(move || daemon.serve_unix(&socket))
        };
        // Wait for the socket to appear.
        for _ in 0..100 {
            if socket.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        // Client A connects and stays silent.
        let idle = UnixStream::connect(&socket).unwrap();
        // Client B must be served regardless.
        let mut busy = UnixStream::connect(&socket).unwrap();
        writeln!(busy, "{{\"op\":\"ping\",\"id\":1}}").unwrap();
        let mut reader = BufReader::new(busy.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"pong\":true"), "{line}");
        // B shuts the daemon down while A is still connected.
        writeln!(busy, "{{\"op\":\"shutdown\",\"id\":2}}").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"shutdown\":true"), "{line}");
        serving.join().unwrap().unwrap();
        assert!(daemon.is_shutdown());
        drop(idle);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A final request line without a trailing newline (client shuts its
    /// write side at EOF) must still be answered, like the stdin session
    /// path answers it.
    #[cfg(unix)]
    #[test]
    fn unterminated_final_line_is_answered_at_eof() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::Shutdown;
        use std::os::unix::net::UnixStream;

        let dir = std::env::temp_dir().join(format!("comet-daemon-eof-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("daemon.sock");
        let daemon = Arc::new(daemon());
        let serving = {
            let daemon = daemon.clone();
            let socket = socket.clone();
            std::thread::spawn(move || daemon.serve_unix(&socket))
        };
        for _ in 0..100 {
            if socket.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let mut client = UnixStream::connect(&socket).unwrap();
        write!(client, "{{\"op\":\"ping\",\"id\":7}}").unwrap(); // no trailing newline
        client.shutdown(Shutdown::Write).unwrap();
        let mut line = String::new();
        BufReader::new(client.try_clone().unwrap()).read_line(&mut line).unwrap();
        assert!(line.contains("\"pong\":true"), "{line}");
        drop(client);
        // Stop the daemon through a second connection.
        let mut stopper = UnixStream::connect(&socket).unwrap();
        writeln!(stopper, "{{\"op\":\"shutdown\",\"id\":8}}").unwrap();
        let mut response = String::new();
        BufReader::new(stopper.try_clone().unwrap()).read_line(&mut response).unwrap();
        serving.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
