//! Typed service errors.
//!
//! Everything that can go wrong at runtime inside the service — socket I/O,
//! JSON parsing, segment read/write, queue admission, worker panics — is
//! funnelled into [`ServiceError`] so it can surface through the line
//! protocol as a structured error response instead of killing a connection
//! thread (or worse, the daemon). Variants that clients are expected to act
//! on (`Overloaded`, `ShuttingDown`) carry machine-readable flags on the
//! wire; see [`crate::protocol::error_response`].

use crate::json::JsonError;
use comet_sim::RunnerError;

/// A typed, protocol-surfaceable service failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// A simulation/harness error from the runner (includes
    /// [`RunnerError::WorkerPanic`] after bounded retries are exhausted).
    Runner(RunnerError),
    /// A request or segment line failed to parse as JSON.
    Json(JsonError),
    /// The request parsed as JSON but violated the protocol (missing or
    /// mistyped fields, unknown op/target/scope).
    Protocol(String),
    /// An I/O failure, with the operation it interrupted.
    Io {
        /// What the service was doing (e.g. `"segment append"`).
        context: String,
        /// The underlying error rendered to text (kept as a string so the
        /// variant stays `Clone`/`PartialEq` for tests).
        message: String,
    },
    /// The admission bound rejected the request: the job queue is full.
    /// Clients should retry with jittered exponential backoff.
    Overloaded {
        /// Jobs queued when the request was shed.
        queued: usize,
        /// The configured queue bound.
        bound: usize,
    },
    /// The daemon is shutting down; queued work is rejected cleanly.
    ShuttingDown,
}

impl ServiceError {
    /// Wraps an `std::io::Error` with the operation it interrupted.
    pub fn io(context: impl Into<String>, error: &std::io::Error) -> Self {
        ServiceError::Io { context: context.into(), message: error.to_string() }
    }

    /// Whether clients should retry this request after a backoff (the
    /// request itself was fine; the service was momentarily saturated).
    pub fn is_retryable(&self) -> bool {
        matches!(self, ServiceError::Overloaded { .. })
    }

    /// Wraps a runner error for the wire, lifting fleet-drain sentinels to
    /// the typed shutdown rejection: a cell drained because the coordinator
    /// is stopping must reach clients as `"shutting_down":true` (reconnect
    /// elsewhere), not as a simulation failure.
    pub fn from_runner(error: RunnerError) -> Self {
        match error {
            RunnerError::Draining { .. } => ServiceError::ShuttingDown,
            other => ServiceError::Runner(other),
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Runner(error) => write!(f, "{error}"),
            ServiceError::Json(error) => write!(f, "{error}"),
            ServiceError::Protocol(message) => write!(f, "{message}"),
            ServiceError::Io { context, message } => write!(f, "{context}: {message}"),
            ServiceError::Overloaded { queued, bound } => {
                write!(f, "overloaded: job queue is full ({queued}/{bound}); retry with backoff")
            }
            ServiceError::ShuttingDown => write!(f, "daemon is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<RunnerError> for ServiceError {
    fn from(error: RunnerError) -> Self {
        ServiceError::Runner(error)
    }
}

impl From<JsonError> for ServiceError {
    fn from(error: JsonError) -> Self {
        ServiceError::Json(error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let overloaded = ServiceError::Overloaded { queued: 8, bound: 8 };
        assert!(overloaded.to_string().contains("8/8"));
        assert!(overloaded.is_retryable());
        assert!(!ServiceError::ShuttingDown.is_retryable());
        let panic = ServiceError::Runner(RunnerError::WorkerPanic { label: "cell".to_string(), attempts: 3 });
        assert!(panic.to_string().contains("3 attempts"));
    }
}
