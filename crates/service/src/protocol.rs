//! The daemon's line protocol: one JSON request per line in, one JSON
//! response per line out.
//!
//! Requests:
//!
//! ```text
//! {"op":"run","id":1,"scope":"smoke","targets":["fig9","ranks"],"priority":5}
//! {"op":"stats","id":2}
//! {"op":"ping","id":3}
//! {"op":"shutdown","id":4}
//! ```
//!
//! Responses always echo `id` (0 if absent) and carry `"ok"`. A `run`
//! response reports the wall-clock seconds, the request's cache-counter
//! delta (cells, cache_hits, simulated, hit_rate, …), and the per-target
//! datasets under `"results"`.
//!
//! Error responses are typed on the wire: an [`ServiceError::Overloaded`]
//! shed carries `"overloaded":true` plus a `"retry_after_ms"` hint (clients
//! retry with jittered exponential backoff), and
//! [`ServiceError::ShuttingDown`] carries `"shutting_down":true` (clients
//! reconnect elsewhere or give up cleanly — retrying the same daemon is
//! pointless).

use crate::error::ServiceError;
use crate::json;
use crate::service::{ExperimentService, ServiceStats};
use crate::targets;
use comet_sim::experiments::ExperimentScope;
use serde::Serialize;
use std::time::Instant;

/// Backoff hint carried on `Overloaded` error responses.
pub const RETRY_AFTER_MS: u64 = 200;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The operation.
    pub op: Op,
}

/// The operations the daemon understands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Run experiment targets at a scope, with a queue priority.
    Run {
        /// Experiment scope (`smoke` / `quick` / `full`).
        scope: ExperimentScope,
        /// Target names (see [`targets::KNOWN_TARGETS`]).
        targets: Vec<String>,
        /// Queue priority: higher pops first.
        priority: i64,
    },
    /// Report cumulative service statistics.
    Stats,
    /// Liveness check.
    Ping,
    /// Stop the daemon after answering.
    Shutdown,
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, ServiceError> {
    let value = json::parse(line)?;
    let id = json::get(&value, "id").and_then(json::as_u64).unwrap_or(0);
    let op = json::get(&value, "op")
        .and_then(json::as_str)
        .ok_or_else(|| ServiceError::Protocol("missing \"op\"".to_string()))?;
    let op = match op {
        "run" => {
            let scope = match json::get(&value, "scope").and_then(json::as_str).unwrap_or("smoke") {
                "smoke" => ExperimentScope::Smoke,
                "quick" => ExperimentScope::Quick,
                "full" => ExperimentScope::Full,
                other => return Err(ServiceError::Protocol(format!("unknown scope {other:?}"))),
            };
            let targets: Vec<String> = match json::get(&value, "targets").and_then(json::as_seq) {
                Some(items) => items
                    .iter()
                    .map(|item| {
                        json::as_str(item)
                            .map(str::to_string)
                            .ok_or_else(|| ServiceError::Protocol("targets must be strings".to_string()))
                    })
                    .collect::<Result<_, _>>()?,
                None => return Err(ServiceError::Protocol("missing \"targets\"".to_string())),
            };
            if targets.is_empty() {
                return Err(ServiceError::Protocol("\"targets\" must not be empty".to_string()));
            }
            for target in &targets {
                if !targets::KNOWN_TARGETS.contains(&target.as_str()) {
                    return Err(ServiceError::Protocol(format!(
                        "unknown target {target:?} (known: {})",
                        targets::KNOWN_TARGETS.join(", ")
                    )));
                }
            }
            let priority = json::get(&value, "priority").and_then(json::as_i64).unwrap_or(0);
            Op::Run { scope, targets, priority }
        }
        "stats" => Op::Stats,
        "ping" => Op::Ping,
        "shutdown" => Op::Shutdown,
        other => return Err(ServiceError::Protocol(format!("unknown op {other:?}"))),
    };
    Ok(Request { id, op })
}

fn stats_json(stats: &ServiceStats) -> String {
    // hit_rate is derived, so splice it next to the counter fields.
    let counters = serde_json::to_string(stats).expect("value-tree serialization cannot fail");
    let body = counters.strip_suffix('}').expect("object");
    format!("{body},\"hit_rate\":{:.6}}}", stats.hit_rate())
}

/// A typed error response line. Retryable and terminal conditions carry
/// machine-readable flags so clients don't have to parse the message text.
pub fn error_response(id: u64, error: &ServiceError) -> String {
    struct W(serde::Value);
    impl Serialize for W {
        fn to_value(&self) -> serde::Value {
            self.0.clone()
        }
    }
    let mut fields = vec![
        ("id".to_string(), serde::Value::UInt(id)),
        ("ok".to_string(), serde::Value::Bool(false)),
        ("error".to_string(), serde::Value::Str(error.to_string())),
    ];
    match error {
        ServiceError::Overloaded { queued, bound } => {
            fields.push(("overloaded".to_string(), serde::Value::Bool(true)));
            fields.push(("queued".to_string(), serde::Value::UInt(*queued as u64)));
            fields.push(("bound".to_string(), serde::Value::UInt(*bound as u64)));
            fields.push(("retry_after_ms".to_string(), serde::Value::UInt(RETRY_AFTER_MS)));
        }
        ServiceError::ShuttingDown => {
            fields.push(("shutting_down".to_string(), serde::Value::Bool(true)));
        }
        _ => {}
    }
    serde_json::to_string(&W(serde::Value::Map(fields))).expect("value-tree serialization cannot fail")
}

/// Executes a `run` request against `service` and builds the response line.
pub fn run_response(
    service: &ExperimentService,
    id: u64,
    scope: ExperimentScope,
    target_names: &[String],
) -> String {
    let before = service.stats();
    let started = Instant::now();
    let mut results = Vec::with_capacity(target_names.len());
    for name in target_names {
        match targets::run_target(name, scope, service) {
            Ok(Some(json)) => results.push((name.as_str(), json)),
            Ok(None) => {
                return error_response(id, &ServiceError::Protocol(format!("unknown target {name:?}")))
            }
            Err(error) => return error_response(id, &ServiceError::Runner(error)),
        }
    }
    let wall_s = started.elapsed().as_secs_f64();
    let delta = service.stats().delta_since(&before);
    let results_json: Vec<String> = results.iter().map(|(name, json)| format!("\"{name}\":{json}")).collect();
    format!(
        "{{\"id\":{id},\"ok\":true,\"wall_s\":{wall_s:.6},\"stats\":{},\"results\":{{{}}}}}",
        stats_json(&delta),
        results_json.join(",")
    )
}

/// Handles one already-parsed request, returning the response line and
/// whether the daemon should shut down afterwards.
pub fn handle_request(service: &ExperimentService, request: &Request) -> (String, bool) {
    match &request.op {
        Op::Run { scope, targets, .. } => (run_response(service, request.id, *scope, targets), false),
        Op::Stats => {
            let stats = service.stats();
            let line = format!(
                "{{\"id\":{},\"ok\":true,\"stats\":{},\"cached_cells\":{}}}",
                request.id,
                stats_json(&stats),
                service.cached_cells()
            );
            (line, false)
        }
        Op::Ping => (format!("{{\"id\":{},\"ok\":true,\"pong\":true}}", request.id), false),
        Op::Shutdown => (format!("{{\"id\":{},\"ok\":true,\"shutdown\":true}}", request.id), true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_run_requests() {
        let request =
            parse_request(r#"{"op":"run","id":7,"scope":"smoke","targets":["fig9"],"priority":-3}"#).unwrap();
        assert_eq!(request.id, 7);
        assert_eq!(
            request.op,
            Op::Run { scope: ExperimentScope::Smoke, targets: vec!["fig9".to_string()], priority: -3 }
        );
    }

    #[test]
    fn defaults_and_errors() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request { id: 0, op: Op::Ping });
        assert!(matches!(parse_request("not json"), Err(ServiceError::Json(_))));
        assert!(matches!(parse_request(r#"{"id":1}"#), Err(ServiceError::Protocol(_))));
        assert!(parse_request(r#"{"op":"run","targets":[]}"#).is_err());
        assert!(parse_request(r#"{"op":"run","targets":["nope"]}"#).is_err());
        assert!(parse_request(r#"{"op":"run","scope":"huge","targets":["fig9"]}"#).is_err());
    }

    #[test]
    fn error_responses_are_parseable_json() {
        let line = error_response(3, &ServiceError::Protocol("bad \"thing\"".to_string()));
        let value = json::parse(&line).unwrap();
        assert_eq!(json::get(&value, "ok"), Some(&serde::Value::Bool(false)));
        assert_eq!(json::as_str(json::get(&value, "error").unwrap()), Some("bad \"thing\""));
    }

    #[test]
    fn overloaded_responses_carry_the_retry_flags() {
        let line = error_response(9, &ServiceError::Overloaded { queued: 4, bound: 4 });
        let value = json::parse(&line).unwrap();
        assert_eq!(json::get(&value, "overloaded"), Some(&serde::Value::Bool(true)));
        assert_eq!(json::get(&value, "retry_after_ms").and_then(json::as_u64), Some(RETRY_AFTER_MS));
        assert_eq!(json::get(&value, "queued").and_then(json::as_u64), Some(4));

        let line = error_response(2, &ServiceError::ShuttingDown);
        let value = json::parse(&line).unwrap();
        assert_eq!(json::get(&value, "shutting_down"), Some(&serde::Value::Bool(true)));
        assert_eq!(json::get(&value, "overloaded"), None);
    }
}
