//! The daemon's line protocol: one JSON request per line in, one JSON
//! response per line out.
//!
//! Requests:
//!
//! ```text
//! {"op":"run","id":1,"scope":"smoke","targets":["fig9","ranks"],"priority":5}
//! {"op":"stats","id":2}
//! {"op":"ping","id":3}
//! {"op":"shutdown","id":4}
//! {"op":"metrics","id":5}
//! ```
//!
//! Responses always echo `id` (0 if absent) and carry `"ok"`. A `run`
//! response reports the wall-clock seconds, the request's cache-counter
//! delta (cells, cache_hits, simulated, hit_rate, …), and the per-target
//! datasets under `"results"`.
//!
//! Error responses are typed on the wire: an [`ServiceError::Overloaded`]
//! shed carries `"overloaded":true` plus a `"retry_after_ms"` hint (clients
//! retry with jittered exponential backoff), and
//! [`ServiceError::ShuttingDown`] carries `"shutting_down":true` (clients
//! reconnect elsewhere or give up cleanly — retrying the same daemon is
//! pointless).
//!
//! ## Fleet operations
//!
//! Worker processes speak the same line protocol over their outbound TCP
//! (or Unix) connections:
//!
//! ```text
//! {"op":"register","id":1,"threads":4,"schema":"comet-cell/v2"}
//! {"op":"pull","id":2,"worker":3,"wait_ms":500}
//! {"op":"heartbeat","id":3,"worker":3,"cells":17,"busy":true}
//! {"op":"complete","id":4,"worker":3,"key":"<32 hex>","result":{...}}
//! {"op":"complete","id":5,"worker":3,"key":"<32 hex>","error":"..."}
//! ```
//!
//! `register` advertises capabilities and is refused unless the worker's
//! `schema` matches this coordinator's [`KEY_SCHEMA`] — a mixed-version
//! fleet must fail loudly at the door, not poison the cache later. `pull`
//! long-polls for a leased cell (the response's `job` is `null` when none
//! arrived within `wait_ms`); `heartbeat` extends every lease the worker
//! holds; `complete` reports a result (or a typed failure) and answers with
//! `"accepted"` — `false` marks a stale duplicate after lease expiry.
//!
//! ## Line framing
//!
//! Every transport — Unix socket, TCP, stdin session, and the CLI client —
//! frames messages through one [`LineConn`] codec (newline-delimited,
//! timeout-aware, partial-final-line tolerant), so the paths cannot drift
//! apart in how they assemble lines from reads.

use crate::error::ServiceError;
use crate::json;
use crate::key::{CellKey, KEY_SCHEMA};
use crate::service::{ExperimentService, ServiceStats};
use crate::targets;
use comet_sim::experiments::ExperimentScope;
use serde::{Serialize, Value};
use std::io::Read;
use std::time::Instant;

/// Backoff hint carried on `Overloaded` error responses.
pub const RETRY_AFTER_MS: u64 = 200;

/// One newline-framed connection: assembles lines from timeout-aware reads
/// without losing partially buffered bytes (a `BufReader` may drop them on a
/// timeout error). Shared by the daemon's Unix/TCP/stdin paths and the CLI
/// client.
#[derive(Debug)]
pub struct LineConn<S> {
    stream: S,
    pending: Vec<u8>,
    eof: bool,
}

/// What one [`LineConn::read_event`] call observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineEvent {
    /// A complete line (without its newline).
    Line(String),
    /// The read timed out (the stream has a read timeout set); buffered
    /// partial data is retained for the next call.
    TimedOut,
    /// End of stream. A final unterminated line, if any, is surfaced once —
    /// a client may shut down its write side and still expect an answer.
    Eof {
        /// The unterminated final line, if the stream ended mid-line.
        partial: Option<String>,
    },
}

impl<S: Read + std::io::Write> LineConn<S> {
    /// Wraps a stream.
    pub fn new(stream: S) -> Self {
        LineConn { stream, pending: Vec::new(), eof: false }
    }

    /// The underlying stream (for setting socket timeouts).
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// The underlying stream, mutably (for deliberately unframed writes in
    /// fault injection — a torn result line must bypass the codec).
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    /// Reads until one complete line, a timeout, or EOF (whichever first).
    pub fn read_event(&mut self) -> std::io::Result<LineEvent> {
        loop {
            if let Some(newline) = self.pending.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.pending.drain(..=newline).collect();
                return Ok(LineEvent::Line(String::from_utf8_lossy(&line[..newline]).into_owned()));
            }
            if self.eof {
                return Ok(LineEvent::Eof { partial: None });
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    let partial = (!self.pending.is_empty())
                        .then(|| String::from_utf8_lossy(&self.pending).into_owned());
                    self.pending.clear();
                    return Ok(LineEvent::Eof { partial });
                }
                Ok(read) => self.pending.extend_from_slice(&chunk[..read]),
                Err(error)
                    if matches!(
                        error.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(LineEvent::TimedOut);
                }
                Err(error) => return Err(error),
            }
        }
    }

    /// Writes one line and flushes it.
    pub fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }
}

/// Strips the `tcp://` prefix from a listen/connect spec, e.g.
/// `tcp://127.0.0.1:7801` → `127.0.0.1:7801`.
pub fn parse_tcp_spec(spec: &str) -> Option<&str> {
    spec.strip_prefix("tcp://").filter(|addr| !addr.is_empty())
}

/// Deterministic backoff jitter in `[0, base)`, hashed from a caller
/// identity and the attempt number so concurrent reconnecting workers
/// desynchronize without randomness.
pub fn backoff_jitter_ms(identity: u64, base: u64, attempt: u32) -> u64 {
    if base == 0 {
        return 0;
    }
    let mut hash = 0xcbf29ce484222325u64;
    for byte in identity.to_le_bytes().into_iter().chain((attempt as u64).to_le_bytes()) {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash % base
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The operation.
    pub op: Op,
}

/// The operations the daemon understands.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Run experiment targets at a scope, with a queue priority.
    Run {
        /// Experiment scope (`smoke` / `quick` / `full`).
        scope: ExperimentScope,
        /// Target names (see [`targets::KNOWN_TARGETS`]).
        targets: Vec<String>,
        /// Queue priority: higher pops first.
        priority: i64,
    },
    /// Report cumulative service statistics.
    Stats,
    /// Render the full metrics registry as Prometheus text exposition.
    Metrics,
    /// Liveness check.
    Ping,
    /// Stop the daemon after answering.
    Shutdown,
    /// A fleet worker registers itself, advertising capabilities.
    Register {
        /// The worker's simulation threads.
        threads: usize,
        /// The worker's cell-key schema; must match [`KEY_SCHEMA`].
        schema: String,
    },
    /// A registered worker long-polls for a leased cell.
    Pull {
        /// The worker id from registration.
        worker: u64,
        /// How long the coordinator may hold the poll open (bounded).
        wait_ms: u64,
    },
    /// A registered worker proves liveness, extending its leases. The
    /// optional fields piggyback a compact metrics snapshot so the
    /// coordinator's scrape shows per-worker gauges without extra round
    /// trips.
    Heartbeat {
        /// The worker id from registration.
        worker: u64,
        /// Cells this worker has completed over its session, if reported.
        cells: Option<u64>,
        /// Whether the worker is currently executing a job, if reported.
        busy: Option<bool>,
    },
    /// A worker reports the outcome of a leased cell.
    Complete {
        /// The worker id from registration.
        worker: u64,
        /// The cell being completed.
        key: CellKey,
        /// `Ok`: the serialized result projection. `Err`: the worker-side
        /// error text (deterministic failures reproduce locally).
        outcome: Result<Value, String>,
    },
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, ServiceError> {
    let value = json::parse(line)?;
    let id = json::get(&value, "id").and_then(json::as_u64).unwrap_or(0);
    let op = json::get(&value, "op")
        .and_then(json::as_str)
        .ok_or_else(|| ServiceError::Protocol("missing \"op\"".to_string()))?;
    let op = match op {
        "run" => {
            let scope = match json::get(&value, "scope").and_then(json::as_str).unwrap_or("smoke") {
                "smoke" => ExperimentScope::Smoke,
                "quick" => ExperimentScope::Quick,
                "full" => ExperimentScope::Full,
                other => return Err(ServiceError::Protocol(format!("unknown scope {other:?}"))),
            };
            let targets: Vec<String> = match json::get(&value, "targets").and_then(json::as_seq) {
                Some(items) => items
                    .iter()
                    .map(|item| {
                        json::as_str(item)
                            .map(str::to_string)
                            .ok_or_else(|| ServiceError::Protocol("targets must be strings".to_string()))
                    })
                    .collect::<Result<_, _>>()?,
                None => return Err(ServiceError::Protocol("missing \"targets\"".to_string())),
            };
            if targets.is_empty() {
                return Err(ServiceError::Protocol("\"targets\" must not be empty".to_string()));
            }
            for target in &targets {
                if !targets::KNOWN_TARGETS.contains(&target.as_str()) {
                    return Err(ServiceError::Protocol(format!(
                        "unknown target {target:?} (known: {})",
                        targets::KNOWN_TARGETS.join(", ")
                    )));
                }
            }
            let priority = json::get(&value, "priority").and_then(json::as_i64).unwrap_or(0);
            Op::Run { scope, targets, priority }
        }
        "stats" => Op::Stats,
        "metrics" => Op::Metrics,
        "ping" => Op::Ping,
        "shutdown" => Op::Shutdown,
        "register" => Op::Register {
            threads: json::get(&value, "threads").and_then(json::as_u64).unwrap_or(1) as usize,
            schema: json::get(&value, "schema")
                .and_then(json::as_str)
                .ok_or_else(|| ServiceError::Protocol("register requires \"schema\"".to_string()))?
                .to_string(),
        },
        "pull" => Op::Pull {
            worker: worker_field(&value)?,
            wait_ms: json::get(&value, "wait_ms").and_then(json::as_u64).unwrap_or(0),
        },
        "heartbeat" => Op::Heartbeat {
            worker: worker_field(&value)?,
            cells: json::get(&value, "cells").and_then(json::as_u64),
            busy: json::get(&value, "busy").and_then(|v| match v {
                Value::Bool(b) => Some(*b),
                _ => None,
            }),
        },
        "complete" => {
            let key = json::get(&value, "key")
                .and_then(json::as_str)
                .and_then(CellKey::from_hex)
                .ok_or_else(|| ServiceError::Protocol("complete requires a 32-hex \"key\"".to_string()))?;
            let outcome = match json::get(&value, "result") {
                Some(result) => Ok(result.clone()),
                None => Err(json::get(&value, "error")
                    .and_then(json::as_str)
                    .ok_or_else(|| {
                        ServiceError::Protocol("complete requires \"result\" or \"error\"".to_string())
                    })?
                    .to_string()),
            };
            Op::Complete { worker: worker_field(&value)?, key, outcome }
        }
        other => return Err(ServiceError::Protocol(format!("unknown op {other:?}"))),
    };
    Ok(Request { id, op })
}

fn worker_field(value: &Value) -> Result<u64, ServiceError> {
    json::get(value, "worker")
        .and_then(json::as_u64)
        .ok_or_else(|| ServiceError::Protocol("fleet ops require a \"worker\" id".to_string()))
}

fn stats_json(stats: &ServiceStats) -> String {
    // hit_rate is derived, so splice it next to the counter fields.
    let counters = serde_json::to_string(stats).expect("value-tree serialization cannot fail");
    let body = counters.strip_suffix('}').expect("object");
    format!("{body},\"hit_rate\":{:.6}}}", stats.hit_rate())
}

/// A typed error response line. Retryable and terminal conditions carry
/// machine-readable flags so clients don't have to parse the message text.
pub fn error_response(id: u64, error: &ServiceError) -> String {
    struct W(serde::Value);
    impl Serialize for W {
        fn to_value(&self) -> serde::Value {
            self.0.clone()
        }
    }
    let mut fields = vec![
        ("id".to_string(), serde::Value::UInt(id)),
        ("ok".to_string(), serde::Value::Bool(false)),
        ("error".to_string(), serde::Value::Str(error.to_string())),
    ];
    match error {
        ServiceError::Overloaded { queued, bound } => {
            fields.push(("overloaded".to_string(), serde::Value::Bool(true)));
            fields.push(("queued".to_string(), serde::Value::UInt(*queued as u64)));
            fields.push(("bound".to_string(), serde::Value::UInt(*bound as u64)));
            fields.push(("retry_after_ms".to_string(), serde::Value::UInt(RETRY_AFTER_MS)));
        }
        ServiceError::ShuttingDown => {
            fields.push(("shutting_down".to_string(), serde::Value::Bool(true)));
        }
        _ => {}
    }
    serde_json::to_string(&W(serde::Value::Map(fields))).expect("value-tree serialization cannot fail")
}

/// Response to a `metrics` request: the full Prometheus text exposition,
/// JSON-quoted under `"exposition"`.
pub fn metrics_response(id: u64, exposition: &str) -> String {
    struct W(serde::Value);
    impl Serialize for W {
        fn to_value(&self) -> serde::Value {
            self.0.clone()
        }
    }
    let quoted = serde_json::to_string(&W(serde::Value::Str(exposition.to_string())))
        .expect("value-tree serialization cannot fail");
    format!("{{\"id\":{id},\"ok\":true,\"exposition\":{quoted}}}")
}

/// Response to a successful `register`: the worker's id and the lease
/// timeout it must heartbeat within.
pub fn register_response(id: u64, worker: u64, lease_timeout_ms: u64) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"worker\":{worker},\"lease_timeout_ms\":{lease_timeout_ms}}}")
}

/// Response to a `pull`: the leased cell (its key, redelivery count, and
/// the canonical-form payload, embedded raw — it is already JSON), or
/// `"job":null` when nothing arrived within the poll window.
pub fn pull_response(id: u64, job: Option<(CellKey, u32, &str)>) -> String {
    match job {
        Some((key, redeliveries, payload)) => format!(
            "{{\"id\":{id},\"ok\":true,\"job\":{{\"key\":\"{key}\",\"redeliveries\":{redeliveries},\"payload\":{payload}}}}}"
        ),
        None => format!("{{\"id\":{id},\"ok\":true,\"job\":null}}"),
    }
}

/// Response to a `heartbeat`. `live: false` tells the worker it has been
/// presumed dead and must re-register.
pub fn heartbeat_response(id: u64, live: bool) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"live\":{live}}}")
}

/// Response to a `complete`. `accepted: false` marks a stale duplicate
/// (the lease expired and the cell was re-dispatched); the worker just
/// moves on.
pub fn complete_response(id: u64, accepted: bool) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"accepted\":{accepted}}}")
}

/// Validates a registering worker's schema advertisement against this
/// coordinator's [`KEY_SCHEMA`].
pub fn check_schema(schema: &str) -> Result<(), ServiceError> {
    if schema == KEY_SCHEMA {
        Ok(())
    } else {
        Err(ServiceError::Protocol(format!(
            "worker schema {schema:?} does not match coordinator schema {KEY_SCHEMA:?}"
        )))
    }
}

/// Executes a `run` request against `service` and builds the response line.
pub fn run_response(
    service: &ExperimentService,
    id: u64,
    scope: ExperimentScope,
    target_names: &[String],
) -> String {
    let before = service.stats();
    let started = Instant::now();
    let mut results = Vec::with_capacity(target_names.len());
    for name in target_names {
        match targets::run_target(name, scope, service) {
            Ok(Some(json)) => results.push((name.as_str(), json)),
            Ok(None) => {
                return error_response(id, &ServiceError::Protocol(format!("unknown target {name:?}")))
            }
            Err(error) => return error_response(id, &ServiceError::from_runner(error)),
        }
    }
    let wall_s = started.elapsed().as_secs_f64();
    let delta = service.stats().delta_since(&before);
    let results_json: Vec<String> = results.iter().map(|(name, json)| format!("\"{name}\":{json}")).collect();
    format!(
        "{{\"id\":{id},\"ok\":true,\"wall_s\":{wall_s:.6},\"stats\":{},\"results\":{{{}}}}}",
        stats_json(&delta),
        results_json.join(",")
    )
}

/// Handles one already-parsed request, returning the response line and
/// whether the daemon should shut down afterwards.
pub fn handle_request(service: &ExperimentService, request: &Request) -> (String, bool) {
    match &request.op {
        Op::Run { scope, targets, .. } => (run_response(service, request.id, *scope, targets), false),
        Op::Stats => {
            let stats = service.stats();
            let line = format!(
                "{{\"id\":{},\"ok\":true,\"stats\":{},\"cached_cells\":{}}}",
                request.id,
                stats_json(&stats),
                service.cached_cells()
            );
            (line, false)
        }
        Op::Metrics => (metrics_response(request.id, &service.render_metrics()), false),
        Op::Ping => (format!("{{\"id\":{},\"ok\":true,\"pong\":true}}", request.id), false),
        Op::Shutdown => (format!("{{\"id\":{},\"ok\":true,\"shutdown\":true}}", request.id), true),
        // Fleet ops are routed by the daemon when a fleet is attached; a
        // fleet-less path (stdin session, plain tests) refuses them loudly.
        Op::Register { .. } | Op::Pull { .. } | Op::Heartbeat { .. } | Op::Complete { .. } => (
            error_response(
                request.id,
                &ServiceError::Protocol("this endpoint has no fleet coordinator".to_string()),
            ),
            false,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_run_requests() {
        let request =
            parse_request(r#"{"op":"run","id":7,"scope":"smoke","targets":["fig9"],"priority":-3}"#).unwrap();
        assert_eq!(request.id, 7);
        assert_eq!(
            request.op,
            Op::Run { scope: ExperimentScope::Smoke, targets: vec!["fig9".to_string()], priority: -3 }
        );
    }

    #[test]
    fn defaults_and_errors() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request { id: 0, op: Op::Ping });
        assert!(matches!(parse_request("not json"), Err(ServiceError::Json(_))));
        assert!(matches!(parse_request(r#"{"id":1}"#), Err(ServiceError::Protocol(_))));
        assert!(parse_request(r#"{"op":"run","targets":[]}"#).is_err());
        assert!(parse_request(r#"{"op":"run","targets":["nope"]}"#).is_err());
        assert!(parse_request(r#"{"op":"run","scope":"huge","targets":["fig9"]}"#).is_err());
    }

    #[test]
    fn error_responses_are_parseable_json() {
        let line = error_response(3, &ServiceError::Protocol("bad \"thing\"".to_string()));
        let value = json::parse(&line).unwrap();
        assert_eq!(json::get(&value, "ok"), Some(&serde::Value::Bool(false)));
        assert_eq!(json::as_str(json::get(&value, "error").unwrap()), Some("bad \"thing\""));
    }

    #[test]
    fn overloaded_responses_carry_the_retry_flags() {
        let line = error_response(9, &ServiceError::Overloaded { queued: 4, bound: 4 });
        let value = json::parse(&line).unwrap();
        assert_eq!(json::get(&value, "overloaded"), Some(&serde::Value::Bool(true)));
        assert_eq!(json::get(&value, "retry_after_ms").and_then(json::as_u64), Some(RETRY_AFTER_MS));
        assert_eq!(json::get(&value, "queued").and_then(json::as_u64), Some(4));

        let line = error_response(2, &ServiceError::ShuttingDown);
        let value = json::parse(&line).unwrap();
        assert_eq!(json::get(&value, "shutting_down"), Some(&serde::Value::Bool(true)));
        assert_eq!(json::get(&value, "overloaded"), None);
    }
}
