//! Named experiment targets the service can run.
//!
//! Each target is a plan → run → assemble pipeline from
//! [`comet_sim::experiments`], executed through whatever [`CellBackend`] the
//! caller provides (the caching service, or a plain executor), and serialized
//! to JSON for the wire.

use comet_sim::experiments::{self, CellBackend, ExperimentScope};
use comet_sim::RunnerError;
use serde::Serialize;

/// Every target name `run_target` accepts.
pub const KNOWN_TARGETS: &[&str] = &[
    "fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10_11", "fig12_14", "fig13_15", "fig16", "fig17",
    "fig18", "highnrh", "ablation", "ranks", "mixed",
];

fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("value-tree serialization cannot fail")
}

/// Runs one named target through `backend` and returns its dataset as a JSON
/// string, or `Ok(None)` for an unknown target name.
pub fn run_target(
    name: &str,
    scope: ExperimentScope,
    backend: &dyn CellBackend,
) -> Result<Option<String>, RunnerError> {
    let json = match name {
        "fig3" => to_json(&experiments::comparison::fig3_hydra_motivation(scope, backend)?),
        "fig4" => to_json(&experiments::radar_fig4(scope, backend)?),
        "fig6" => {
            let high = experiments::fig6_ct_sweep(scope, 1000, backend)?;
            let low = experiments::fig6_ct_sweep(scope, 125, backend)?;
            format!("{{\"nrh1000\":{},\"nrh125\":{}}}", to_json(&high), to_json(&low))
        }
        "fig7" => to_json(&experiments::fig7_rat_sweep(scope, backend)?),
        "fig8" => to_json(&experiments::fig8_eprt_sweep(scope, backend)?),
        "fig9" => to_json(&experiments::fig9_k_sweep(scope, backend)?),
        "fig10_11" => to_json(&experiments::fig10_fig11_singlecore(scope, backend)?),
        "fig12_14" => to_json(&experiments::fig12_fig14_comparison(scope, backend)?),
        "fig13_15" => to_json(&experiments::fig13_fig15_multicore(scope, backend)?),
        "fig16" => to_json(&experiments::fig16_adversarial(scope, backend)?),
        "fig17" => to_json(&experiments::fig17_false_positive_rate(10_000, 125, 0xF17)),
        "fig18" => to_json(&experiments::comparison::fig18_blockhammer(scope, backend)?),
        "highnrh" => to_json(&experiments::singlecore::high_threshold_singlecore(scope, backend)?),
        "ablation" => to_json(&experiments::sweeps::ablation(scope, 125, backend)?),
        "ranks" => to_json(&experiments::rank_sweep(scope, backend)?),
        "mixed" => to_json(&experiments::mixed_multicore(
            scope,
            &comet_sim::MechanismKind::comparison_set(),
            &scope.thresholds(),
            backend,
        )?),
        _ => return Ok(None),
    };
    Ok(Some(json))
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_sim::experiments::ParallelExecutor;

    #[test]
    fn unknown_targets_are_none_not_errors() {
        let executor = ParallelExecutor::serial();
        assert!(run_target("nope", ExperimentScope::Smoke, &executor).unwrap().is_none());
    }

    #[test]
    fn fig17_runs_and_serializes() {
        let executor = ParallelExecutor::serial();
        let json = run_target("fig17", ExperimentScope::Smoke, &executor).unwrap().unwrap();
        assert!(json.starts_with('['), "{json}");
        assert!(json.contains("unique_rows"));
    }
}
