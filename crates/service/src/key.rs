//! Content-addressed cell identity.
//!
//! A cached result is only reusable if its key covers *everything* the
//! simulation depends on: the full [`SimConfig`] (geometry, timing, energy,
//! controller policy, core model, cycle counts), the runner's seed and loop
//! mode, and the cell spec (workload placement, mechanism with all custom
//! parameters, threshold). The canonical form is the compact JSON rendering
//! of exactly those parts in a fixed field order, prefixed with a schema tag;
//! the key is its 128-bit FNV-1a hash.
//!
//! Key stability is a correctness property, not a convenience: a silent
//! change to the canonical form would either poison warm caches (same key,
//! different meaning) or quietly discard them. The golden tests below pin
//! the canonical form *and* the derived hex keys; if an intentional change
//! to `SimConfig` or `CellSpec` moves them, bump [`KEY_SCHEMA`] so old disk
//! segments are keyed apart, and re-pin the goldens.

use comet_sim::experiments::CellSpec;
use comet_sim::Runner;
use serde::{Serialize, Value};

/// Version tag mixed into every canonical form. Bump on any intentional
/// change to the canonical encoding.
///
/// v2: [`comet_sim::CoreConfig`] gained the address-interleaving
/// [`comet_sim::AddressScheme`] field, which routes every access and
/// therefore keys every cell apart from v1 results.
pub const KEY_SCHEMA: &str = "comet-cell/v2";

/// A 128-bit content-addressed cell key, rendered as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellKey(pub u128);

impl CellKey {
    /// Parses the 32-hex-digit rendering produced by `Display`.
    pub fn from_hex(text: &str) -> Option<CellKey> {
        if text.len() != 32 {
            return None;
        }
        u128::from_str_radix(text, 16).ok().map(CellKey)
    }
}

impl std::fmt::Display for CellKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// 128-bit FNV-1a. Chosen over `DefaultHasher` because its output is
/// specified, stable across Rust releases and platforms — exactly what an
/// on-disk cache key must be.
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u128;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The canonical serialized form of one cell under one runner identity.
///
/// Compact JSON of `{schema, config, seed, loop, cell}` — field order fixed
/// by construction here and by declaration order inside the derived
/// `Serialize` impls of [`comet_sim::SimConfig`] and [`CellSpec`].
pub fn canonical_cell_form(runner: &Runner, cell: &CellSpec) -> String {
    let value = Value::Map(vec![
        ("schema".to_string(), Value::Str(KEY_SCHEMA.to_string())),
        ("config".to_string(), runner.config().to_value()),
        ("seed".to_string(), Value::UInt(runner.seed())),
        ("loop".to_string(), Value::Str(runner.loop_mode().name().to_string())),
        ("cell".to_string(), cell.to_value()),
    ]);
    struct W(Value);
    impl Serialize for W {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    serde_json::to_string(&W(value)).expect("value-tree serialization cannot fail")
}

/// The content-addressed key of one cell under one runner identity.
pub fn cell_key(runner: &Runner, cell: &CellSpec) -> CellKey {
    CellKey(fnv1a_128(canonical_cell_form(runner, cell).as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_sim::experiments::CellSpec;
    use comet_sim::runner::MechanismKind;
    use comet_sim::{LoopMode, SimConfig};
    use comet_trace::AttackKind;

    fn runner() -> Runner {
        Runner::new(SimConfig::quick_test())
    }

    #[test]
    fn fnv1a_128_matches_published_vectors() {
        // Empty input hashes to the offset basis; "a" is a standard vector.
        assert_eq!(fnv1a_128(b""), 0x6c62272e07bb014262b821756295c58d);
        assert_eq!(fnv1a_128(b"a"), 0xd228cb696f1a8caf78912b704e4a8964);
    }

    #[test]
    fn hex_rendering_round_trips() {
        let key = CellKey(0x0123456789abcdef0011223344556677);
        let hex = key.to_string();
        assert_eq!(hex.len(), 32);
        assert_eq!(CellKey::from_hex(&hex), Some(key));
        assert_eq!(CellKey::from_hex("short"), None);
    }

    #[test]
    fn canonical_form_spells_out_every_identity_component() {
        let form = canonical_cell_form(&runner(), &CellSpec::single("429.mcf", MechanismKind::Comet, 1000));
        for needle in [
            "comet-cell/v2",
            "\"seed\":49383",
            "\"loop\":\"event\"",
            "429.mcf",
            "\"nrh\":1000",
            "geometry",
            "\"scheme\":\"RoRaBgBaCoCh\"",
        ] {
            assert!(form.contains(needle), "canonical form missing {needle}: {form}");
        }
    }

    #[test]
    fn keys_separate_every_identity_axis() {
        let base = runner();
        let cell = CellSpec::single("429.mcf", MechanismKind::Comet, 1000);
        let reference = cell_key(&base, &cell);

        // Different workload / mechanism / threshold / placement.
        assert_ne!(reference, cell_key(&base, &CellSpec::single("473.astar", MechanismKind::Comet, 1000)));
        assert_ne!(reference, cell_key(&base, &CellSpec::single("429.mcf", MechanismKind::Hydra, 1000)));
        assert_ne!(reference, cell_key(&base, &CellSpec::single("429.mcf", MechanismKind::Comet, 500)));
        assert_ne!(
            reference,
            cell_key(&base, &CellSpec::homogeneous("429.mcf", 1, MechanismKind::Comet, 1000))
        );
        assert_ne!(
            reference,
            cell_key(
                &base,
                &CellSpec::attacked(
                    "429.mcf",
                    AttackKind::Traditional { rows_per_bank: 8 },
                    MechanismKind::Comet,
                    1000
                )
            )
        );

        // Different seed, loop mode, and configuration.
        assert_ne!(reference, cell_key(&Runner::with_seed(SimConfig::quick_test(), 7), &cell));
        assert_ne!(
            reference,
            cell_key(&Runner::new(SimConfig::quick_test()).with_loop_mode(LoopMode::DenseReference), &cell)
        );
        assert_ne!(reference, cell_key(&Runner::new(SimConfig::quick_test().with_ranks(4)), &cell));
        assert_ne!(reference, cell_key(&Runner::new(SimConfig::quick_test().with_channels(2)), &cell));
        let mut interleaved = SimConfig::quick_test();
        interleaved.core.scheme = comet_sim::AddressScheme::RoRaBgBaChCo;
        assert_ne!(reference, cell_key(&Runner::new(interleaved), &cell));

        // CometCustom parameters are part of the identity.
        let custom = |eprt| {
            CellSpec::single(
                "429.mcf",
                MechanismKind::CometCustom {
                    n_hash: 4,
                    n_counters: 512,
                    rat_entries: 128,
                    reset_divisor: 3,
                    history_length: 256,
                    eprt_percent: eprt,
                },
                1000,
            )
        };
        assert_ne!(cell_key(&base, &custom(25)), cell_key(&base, &custom(50)));
    }

    #[test]
    fn golden_keys_pin_the_canonical_encoding() {
        // These values must never change spontaneously: a drift means the
        // canonical form moved and every persisted cache would be silently
        // invalidated (or worse, mis-shared). If you changed SimConfig /
        // CellSpec / the encoders on purpose, bump KEY_SCHEMA and re-pin.
        let base = runner();
        let golden = [
            (CellSpec::single("429.mcf", MechanismKind::Comet, 1000), "2091c5efe874843c68c6ea4ccce42eff"),
            (CellSpec::single("bfs_ny", MechanismKind::Baseline, 125), "bb657a72713743996785ec0b335b206b"),
            (
                CellSpec::attacked(
                    "473.astar",
                    AttackKind::Traditional { rows_per_bank: 8 },
                    MechanismKind::Para,
                    500,
                ),
                "30fbab6af5e85f526fc886bd08bab421",
            ),
            (
                CellSpec::homogeneous("462.libquantum", 8, MechanismKind::Hydra, 250),
                "9093e2400460c39a4ecac5767c15aa0f",
            ),
        ];
        for (cell, expected) in golden {
            assert_eq!(
                cell_key(&base, &cell).to_string(),
                expected,
                "golden key drifted for {}",
                cell.label()
            );
        }
    }

    #[test]
    fn keys_are_stable_across_invocations() {
        let cell = CellSpec::single("429.mcf", MechanismKind::Comet, 1000);
        let a = cell_key(&runner(), &cell);
        let b = cell_key(&runner(), &cell);
        assert_eq!(a, b);
    }
}
