//! Segment compaction: rewrite the live keys into fresh segments and drop
//! everything superseded or evicted.
//!
//! Append-only segments accumulate garbage two ways: a key re-recorded by a
//! later append (two processes sharing the directory, or a post-compaction
//! crash window) and keys evicted from the bounded in-memory cache. A
//! compaction pass streams every segment, keeps the **last** record of each
//! key that is still in the caller's live set, and rewrites those records
//! into fresh segments.
//!
//! Crash safety is tmp-then-rename: each new segment is fully written and
//! fsynced as `compact-NNNNNN.tmp`, then renamed to `segment-NNNNNN.jsonl`
//! at an index *above* every old segment, and only then are the old
//! segments deleted. A crash at any point leaves a readable store: stray
//! `.tmp` files are deleted on open (never trusted), and if both old and
//! new segments survive, the new ones win by last-write-wins ordering.

use crate::key::CellKey;
use crate::store::{segment_files, ResultStore, SEGMENT_CAPACITY};
use std::collections::{HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write};

/// What one compaction pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Unique live keys rewritten into fresh segments.
    pub kept: usize,
    /// Records dropped (superseded duplicates plus non-live keys).
    pub dropped: usize,
    /// Segment files before the pass.
    pub segments_before: usize,
    /// Segment files after the pass.
    pub segments_after: usize,
}

impl ResultStore {
    /// Compacts the store down to `live` keys (see the module docs). The
    /// open segment is sealed first; the next append starts a fresh segment
    /// above the compacted ones.
    pub fn compact(&mut self, live: &HashSet<CellKey>) -> std::io::Result<CompactionReport> {
        let _span = comet_telemetry::span("store.compact");
        self.seal()?;
        let dir = self.dir().to_path_buf();
        let old_files = segment_files(&dir)?;
        let segments_before = old_files.len();
        let next_index = old_files.last().map(|(index, _)| index + 1).unwrap_or(0);

        // Last-write-wins over the stream, preserving first-seen order so a
        // compacted store reloads deterministically.
        let mut order: Vec<CellKey> = Vec::new();
        let mut lines: HashMap<CellKey, String> = HashMap::new();
        let mut records = 0usize;
        for (key, result) in self.stream()? {
            records += 1;
            let line = format!(
                "{{\"key\":\"{key}\",\"result\":{}}}",
                serde_json::to_string(&result).expect("value-tree serialization cannot fail")
            );
            if lines.insert(key, line).is_none() {
                order.push(key);
            }
        }
        order.retain(|key| live.contains(key));
        let kept = order.len();

        // Write the survivors into tmp files, fsync, rename into place.
        let mut new_paths = Vec::new();
        for (chunk_index, chunk) in order.chunks(SEGMENT_CAPACITY).enumerate() {
            let index = next_index + chunk_index as u64;
            let tmp = dir.join(format!("compact-{index:06}.tmp"));
            {
                let file = OpenOptions::new().create(true).write(true).truncate(true).open(&tmp)?;
                let mut writer = BufWriter::new(file);
                for key in chunk {
                    writeln!(writer, "{}", lines[key])?;
                }
                writer.flush()?;
                writer.get_ref().sync_all()?;
            }
            let path = dir.join(format!("segment-{index:06}.jsonl"));
            fs::rename(&tmp, &path)?;
            new_paths.push(path);
        }
        // Make the renames durable before deleting the old segments
        // (best-effort: not every filesystem supports dir fsync).
        if let Ok(dir_handle) = File::open(&dir) {
            let _ = dir_handle.sync_all();
        }
        for (_, path) in &old_files {
            let _ = fs::remove_file(path);
        }

        let segments_after = new_paths.len();
        self.set_layout(next_index + segments_after as u64, segments_after);
        Ok(CompactionReport { kept, dropped: records - kept, segments_before, segments_after })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_sim::{MechanismKind, Runner, SimConfig};

    fn sample() -> comet_sim::RunResult {
        Runner::new(SimConfig::quick_test())
            .run_single_core("429.mcf", MechanismKind::Baseline, 1000)
            .unwrap()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("comet-compact-{tag}-{}", std::process::id()))
    }

    #[test]
    fn compaction_drops_dead_and_superseded_keys_and_survives_reopen() {
        let dir = temp_dir("basic");
        let _ = fs::remove_dir_all(&dir);
        let result = sample();
        let mut store = ResultStore::open(&dir).unwrap();
        for i in 0..10u128 {
            store.append(CellKey(i), &result).unwrap();
        }
        // Re-record key 3 (superseded) and keep only even keys live.
        store.append(CellKey(3), &result).unwrap();
        let live: HashSet<CellKey> = (0..10u128).filter(|i| i % 2 == 0).map(CellKey).collect();

        let report = store.compact(&live).unwrap();
        assert_eq!(report.kept, 5);
        assert_eq!(report.dropped, 6, "5 odd keys + 1 superseded duplicate record");
        assert_eq!(report.segments_after, 1);
        assert_eq!(store.segments_on_disk(), 1);

        // The compacted store reloads exactly the live set, and appends
        // after compaction land in a fresh segment above it.
        store.append(CellKey(100), &result).unwrap();
        let reopened = ResultStore::open(&dir).unwrap();
        let keys: Vec<CellKey> = reopened.stream().unwrap().map(|(key, _)| key).collect();
        assert_eq!(keys.len(), 6);
        assert!(keys.contains(&CellKey(100)));
        for key in &live {
            assert!(keys.contains(key), "live key {key:?} survived");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stray_tmp_files_are_removed_on_open_not_loaded() {
        let dir = temp_dir("tmp");
        let _ = fs::remove_dir_all(&dir);
        let result = sample();
        {
            let mut store = ResultStore::open(&dir).unwrap();
            store.append(CellKey(1), &result).unwrap();
        }
        // Simulate a crash mid-compaction: a half-written tmp file.
        fs::write(dir.join("compact-000007.tmp"), "{\"key\":\"partial").unwrap();
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.stream().unwrap().count(), 1, "tmp content is never loaded");
        assert!(!dir.join("compact-000007.tmp").exists(), "stray tmp removed on open");
        let _ = fs::remove_dir_all(&dir);
    }
}
