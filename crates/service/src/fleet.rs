//! The fleet coordinator: lease-based cell dispatch over real time.
//!
//! [`Fleet`] wraps the pure [`LeaseTable`] in a mutex/condvar and an
//! [`Instant`] clock, and is the meeting point of the two sides of the
//! distributed service:
//!
//! * the **service side** calls [`Fleet::run_cell`] from inside
//!   `run_cell_contained` — it submits the cell's canonical form for
//!   dispatch and blocks until a worker completes it, the redelivery budget
//!   is exhausted, the coordinator drains, or the fleet decides the cell is
//!   better run locally (zero live workers, a deterministic remote failure,
//!   or a pending cell no worker ever pulled);
//! * the **daemon side** calls [`register`](Fleet::register) /
//!   [`pull`](Fleet::pull) / [`heartbeat`](Fleet::heartbeat) /
//!   [`complete`](Fleet::complete) / [`disconnect`](Fleet::disconnect) on
//!   behalf of worker connections.
//!
//! Supervision is driven opportunistically: every blocked waiter ticks the
//! lease table on each condvar wakeup, so expiry needs no dedicated timer
//! thread — a fleet with any live waiter (or puller) advances, and a fleet
//! with none has nothing to expire that anyone is waiting on.
//!
//! Partial failure never wedges the coordinator: every blocking wait has a
//! bounded timeout, lock poisoning is recovered (the table is consistent —
//! all mutations happen under the lock, panics happen outside it), and
//! every terminal outcome (completed, exhausted, drained, degraded-to-local)
//! wakes the cell's waiter exactly once.

use crate::key::{canonical_cell_form, cell_key, CellKey};
use crate::lease::{CompleteOutcome, JobEvent, LeaseConfig, LeaseCounters, LeaseTable};
use comet_sim::experiments::CellSpec;
use comet_sim::{RunResult, Runner};
use comet_telemetry::{registry::exponential_bounds, Counter, Gauge, Histogram, Registry};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Upper bound on one `pull` long-poll, whatever the worker asked for.
pub const PULL_WAIT_CAP_MS: u64 = 1_000;

/// How often blocked waiters wake to tick supervision.
const TICK_INTERVAL_MS: u64 = 25;

/// Terminal outcome of one dispatched cell, as seen by the service side.
#[derive(Debug)]
pub enum FleetDisposition {
    /// A worker completed the cell; the result is authoritative (bit-exact
    /// with a local run by construction of the cache key).
    Completed(Box<RunResult>),
    /// The fleet declined the cell — run it locally. Carries the reason for
    /// the stats and logs.
    RunLocal(LocalReason),
    /// Every lease expired and the redelivery budget is spent.
    Exhausted {
        /// Redeliveries attempted before giving up.
        redeliveries: u32,
    },
    /// The coordinator is draining; the cell was rejected, not run.
    Draining,
}

/// Why the fleet handed a cell back for local execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalReason {
    /// No live workers at submit time (or the last one died while the cell
    /// was pending).
    NoWorkers,
    /// A worker reported a deterministic simulation failure; re-running
    /// locally reproduces the typed error exactly.
    RemoteFailed,
    /// Live workers exist but none pulled the cell within the patience
    /// window (hung-but-heartbeating fleet).
    Unclaimed,
}

/// Internal terminal state of one submitted cell.
#[derive(Debug)]
enum CellOutcome {
    Completed(Box<RunResult>),
    Failed(String),
    Exhausted { redeliveries: u32 },
    Drained,
}

/// Point-in-time fleet statistics, merged into [`crate::ServiceStats`].
///
/// Remote completions are deliberately *not* counted here: the service-side
/// `remote_cells_total` registry counter (incremented where the completed
/// result is consumed) is the single source of truth, so the same event can
/// never be tallied in two places that drift.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Workers currently registered and live.
    pub workers_live: u64,
    /// Leases that expired (missed heartbeats, dropped connections).
    pub leases_expired: u64,
    /// Cells handed out again after a lease expiry.
    pub redeliveries: u64,
    /// Cells that ran out of redeliveries.
    pub exhausted: u64,
    /// Duplicate completions dropped after lease expiry.
    pub stale_completions: u64,
}

#[derive(Debug)]
struct FleetState {
    table: LeaseTable,
    payloads: HashMap<CellKey, String>,
    outcomes: HashMap<CellKey, CellOutcome>,
    draining: bool,
    last_remote_failure: Option<String>,
    /// Last heartbeat time per worker, for the interval histogram.
    last_heartbeat_ms: HashMap<u64, u64>,
}

/// Registry handles the coordinator mirrors its supervision counters into.
/// Bound once by [`crate::ExperimentService::attach_fleet`]; the lease table
/// stays the authority, and [`Fleet::sync_metrics`] copies its counters into
/// these series so a scrape and `stats()` can never disagree.
struct FleetMetrics {
    registry: Arc<Registry>,
    workers_live: Gauge,
    leases_expired: Counter,
    redeliveries: Counter,
    exhausted: Counter,
    stale_completions: Counter,
    heartbeat_interval_ms: Histogram,
    pull_wait_ms: Histogram,
}

impl FleetMetrics {
    fn new(registry: Arc<Registry>) -> Self {
        let latency_bounds = exponential_bounds(1.0, 4.0, 8);
        FleetMetrics {
            workers_live: registry
                .gauge("fleet_workers_live", "Fleet workers currently registered and live."),
            leases_expired: registry.counter(
                "fleet_leases_expired_total",
                "Leases that expired (missed heartbeats, dropped connections).",
            ),
            redeliveries: registry
                .counter("fleet_redeliveries_total", "Cells handed out again after a lease expiry."),
            exhausted: registry.counter("fleet_exhausted_total", "Cells that ran out of redeliveries."),
            stale_completions: registry.counter(
                "fleet_stale_completions_total",
                "Duplicate completions dropped after lease expiry.",
            ),
            heartbeat_interval_ms: registry.histogram(
                "fleet_heartbeat_interval_ms",
                "Observed interval between consecutive heartbeats of one worker.",
                &latency_bounds,
            ),
            pull_wait_ms: registry.histogram(
                "fleet_pull_wait_ms",
                "Time one worker pull long-polled before returning.",
                &latency_bounds,
            ),
            registry,
        }
    }
}

/// Outcome of a worker `pull`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PullOutcome {
    /// A leased cell: its key, redelivery count, and canonical-form payload.
    Job(CellKey, u32, String),
    /// Nothing arrived within the poll window.
    Empty,
    /// The worker is unknown (presumed dead and deregistered): re-register.
    UnknownWorker,
    /// The coordinator is draining: disconnect.
    Draining,
}

/// The fleet coordinator. Cheap to share (`Arc`) between the service, the
/// daemon's connection handlers, and tests.
pub struct Fleet {
    state: Mutex<FleetState>,
    cv: Condvar,
    epoch: Instant,
    metrics: OnceLock<FleetMetrics>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("state", &self.state)
            .field("metrics_bound", &self.metrics.get().is_some())
            .finish()
    }
}

impl Fleet {
    /// A fleet under `config`.
    pub fn new(config: LeaseConfig) -> Self {
        Fleet {
            state: Mutex::new(FleetState {
                table: LeaseTable::new(config),
                payloads: HashMap::new(),
                outcomes: HashMap::new(),
                draining: false,
                last_remote_failure: None,
                last_heartbeat_ms: HashMap::new(),
            }),
            cv: Condvar::new(),
            epoch: Instant::now(),
            metrics: OnceLock::new(),
        }
    }

    /// Binds the coordinator to a metrics registry (once; later calls are
    /// ignored). From then on every supervision mutation mirrors the lease
    /// counters into the registry, and worker heartbeat snapshots surface as
    /// per-worker gauges.
    pub fn bind_metrics(&self, registry: Arc<Registry>) {
        let _ = self.metrics.set(FleetMetrics::new(registry));
        self.sync_metrics();
    }

    /// Copies the authoritative lease-table counters into the bound registry
    /// series. Called after supervision mutations and before a scrape; a
    /// no-op with no registry bound.
    pub fn sync_metrics(&self) {
        if self.metrics.get().is_some() {
            let state = self.lock();
            self.sync_metrics_locked(&state);
        }
    }

    fn sync_metrics_locked(&self, state: &FleetState) {
        let Some(metrics) = self.metrics.get() else { return };
        let LeaseCounters { leases_expired, redeliveries, exhausted, stale_completions } =
            state.table.counters();
        metrics.workers_live.set(state.table.workers_live() as f64);
        metrics.leases_expired.store(leases_expired);
        metrics.redeliveries.store(redeliveries);
        metrics.exhausted.store(exhausted);
        metrics.stale_completions.store(stale_completions);
    }

    /// Records a worker's piggybacked heartbeat snapshot as per-worker
    /// labeled gauges (`worker_cells_total`, `worker_busy`).
    pub fn note_worker_snapshot(&self, worker: u64, cells: u64, busy: bool) {
        let Some(metrics) = self.metrics.get() else { return };
        let id = worker.to_string();
        metrics
            .registry
            .counter_with(
                "worker_cells_total",
                "Cells completed by this worker, as of its last heartbeat.",
                &[("worker", &id)],
            )
            .store(cells);
        metrics
            .registry
            .gauge_with(
                "worker_busy",
                "1 while this worker is executing a job, as of its last heartbeat.",
                &[("worker", &id)],
            )
            .set(if busy { 1.0 } else { 0.0 });
    }

    /// Drops a disconnected worker's per-worker series from the registry.
    fn drop_worker_series(&self, worker: u64) {
        let Some(metrics) = self.metrics.get() else { return };
        let id = worker.to_string();
        metrics.registry.remove_series("worker_cells_total", &[("worker", &id)]);
        metrics.registry.remove_series("worker_busy", &[("worker", &id)]);
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn lock(&self) -> MutexGuard<'_, FleetState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Workers currently live.
    pub fn workers_live(&self) -> usize {
        self.lock().table.workers_live()
    }

    /// The configured base lease timeout (workers must heartbeat within it).
    pub fn lease_timeout_ms(&self) -> u64 {
        self.lock().table.config().lease_timeout_ms
    }

    /// The most recent worker-reported failure message, for diagnostics
    /// (the authoritative typed error comes from the local re-run).
    pub fn last_remote_failure(&self) -> Option<String> {
        self.lock().last_remote_failure.clone()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> FleetStats {
        let state = self.lock();
        let LeaseCounters { leases_expired, redeliveries, exhausted, stale_completions } =
            state.table.counters();
        FleetStats {
            workers_live: state.table.workers_live() as u64,
            leases_expired,
            redeliveries,
            exhausted,
            stale_completions,
        }
    }

    /// Advances lease supervision to now and resolves any expirations.
    fn tick_locked(&self, state: &mut FleetState) {
        let events = state.table.tick(self.now_ms());
        Self::apply_events(state, events);
        self.sync_metrics_locked(state);
    }

    fn apply_events(state: &mut FleetState, events: Vec<JobEvent>) {
        for event in events {
            match event {
                JobEvent::Requeued { .. } => {
                    // The cell is back at the front of the queue; its waiter
                    // keeps waiting.
                }
                JobEvent::Exhausted { key, redeliveries } => {
                    state.payloads.remove(&key);
                    state.outcomes.insert(key, CellOutcome::Exhausted { redeliveries });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Service side
    // ------------------------------------------------------------------

    /// Dispatches one cell to the fleet and blocks until a terminal outcome.
    /// See [`FleetDisposition`] for the contract; this never blocks forever
    /// (drain, exhaustion, worker death, and an unclaimed-cell patience
    /// window all terminate the wait).
    pub fn run_cell(&self, runner: &Runner, cell: &CellSpec) -> FleetDisposition {
        let _span = comet_telemetry::span("fleet.cell");
        let key = cell_key(runner, cell);
        let submitted_ms = self.now_ms();
        // A pending cell no worker pulls within the patience window degrades
        // to local execution rather than stalling the sweep behind a
        // hung-but-heartbeating fleet.
        let patience_ms = {
            let state = self.lock();
            state.table.config().lease_timeout_ms.saturating_mul(2)
        };
        {
            let mut state = self.lock();
            if state.draining {
                return FleetDisposition::Draining;
            }
            if state.table.workers_live() == 0 {
                return FleetDisposition::RunLocal(LocalReason::NoWorkers);
            }
            state.table.submit(key);
            state.payloads.insert(key, canonical_cell_form(runner, cell));
        }
        self.cv.notify_all();

        let mut state = self.lock();
        loop {
            if let Some(outcome) = state.outcomes.remove(&key) {
                state.payloads.remove(&key);
                return match outcome {
                    CellOutcome::Completed(result) => FleetDisposition::Completed(result),
                    CellOutcome::Failed(message) => {
                        state.last_remote_failure = Some(message);
                        FleetDisposition::RunLocal(LocalReason::RemoteFailed)
                    }
                    CellOutcome::Exhausted { redeliveries } => FleetDisposition::Exhausted { redeliveries },
                    CellOutcome::Drained => FleetDisposition::Draining,
                };
            }
            self.tick_locked(&mut state);
            // Still tracked? (tick may have just exhausted it — loop once
            // more and pick the outcome up.)
            if state.outcomes.contains_key(&key) {
                continue;
            }
            if !state.table.contains(key) {
                continue;
            }
            // Degradation paths for a cell still waiting to be pulled.
            let workers = state.table.workers_live();
            // Degrade only while the cell is still *pending*: a leased cell
            // lets its lease run its course (expiry will requeue or exhaust).
            if (workers == 0 || self.now_ms().saturating_sub(submitted_ms) > patience_ms)
                && state.table.withdraw_pending(key)
            {
                state.payloads.remove(&key);
                let reason = if workers == 0 { LocalReason::NoWorkers } else { LocalReason::Unclaimed };
                return FleetDisposition::RunLocal(reason);
            }
            let (next, _timeout) = self
                .cv
                .wait_timeout(state, Duration::from_millis(TICK_INTERVAL_MS))
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
        }
    }

    /// Drains the fleet for shutdown: every queued and leased cell resolves
    /// as [`FleetDisposition::Draining`], workers are forgotten, and all
    /// future submits and pulls are refused.
    pub fn drain(&self) {
        {
            let mut state = self.lock();
            state.draining = true;
            for key in state.table.drain() {
                state.payloads.remove(&key);
                state.outcomes.insert(key, CellOutcome::Drained);
            }
        }
        self.cv.notify_all();
    }

    /// Whether `drain` has been called.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    // ------------------------------------------------------------------
    // Worker side (called by the daemon's connection handlers)
    // ------------------------------------------------------------------

    /// Registers a worker and returns its id. The caller has already
    /// validated the schema advertisement.
    pub fn register(&self, threads: usize) -> u64 {
        let now = self.now_ms();
        let id = {
            let mut state = self.lock();
            let id = state.table.register(threads, now);
            state.last_heartbeat_ms.insert(id, now);
            self.sync_metrics_locked(&state);
            id
        };
        self.cv.notify_all();
        id
    }

    /// Long-polls for a cell on behalf of `worker`, up to `wait_ms` (capped
    /// at [`PULL_WAIT_CAP_MS`]). The observed wait lands in the
    /// `fleet_pull_wait_ms` histogram whatever the outcome.
    pub fn pull(&self, worker: u64, wait_ms: u64) -> PullOutcome {
        let started = Instant::now();
        let outcome = self.pull_inner(worker, wait_ms);
        if let Some(metrics) = self.metrics.get() {
            metrics.pull_wait_ms.observe(started.elapsed().as_millis() as f64);
        }
        outcome
    }

    fn pull_inner(&self, worker: u64, wait_ms: u64) -> PullOutcome {
        let deadline = Instant::now() + Duration::from_millis(wait_ms.min(PULL_WAIT_CAP_MS));
        let mut state = self.lock();
        loop {
            if state.draining {
                return PullOutcome::Draining;
            }
            self.tick_locked(&mut state);
            if state.table.worker_threads(worker).is_none() {
                return PullOutcome::UnknownWorker;
            }
            if let Some((key, redeliveries)) = state.table.dispatch(worker, self.now_ms()) {
                let payload = state.payloads.get(&key).cloned().expect("dispatched cells have payloads");
                // The dispatch woke nobody; completions will.
                return PullOutcome::Job(key, redeliveries, payload);
            }
            let now = Instant::now();
            if now >= deadline {
                return PullOutcome::Empty;
            }
            let wait = (deadline - now).min(Duration::from_millis(TICK_INTERVAL_MS));
            let (next, _) = self.cv.wait_timeout(state, wait).unwrap_or_else(PoisonError::into_inner);
            state = next;
        }
    }

    /// Records a worker heartbeat; `false` means the worker is unknown and
    /// must re-register.
    pub fn heartbeat(&self, worker: u64) -> bool {
        let now = self.now_ms();
        let mut state = self.lock();
        self.tick_locked(&mut state);
        let known = state.table.heartbeat(worker, now);
        if known {
            if let Some(metrics) = self.metrics.get() {
                if let Some(last) = state.last_heartbeat_ms.insert(worker, now) {
                    metrics.heartbeat_interval_ms.observe(now.saturating_sub(last) as f64);
                }
            }
        }
        known
    }

    /// Reports a completion. `outcome` is `Ok(result)` for a successful
    /// simulation, `Err(message)` for a worker-side failure (which the
    /// service reproduces locally — simulation is deterministic, so the
    /// typed error is recovered exactly). Returns whether the report was
    /// authoritative (`false` = stale duplicate, dropped).
    pub fn complete(&self, worker: u64, key: CellKey, outcome: Result<RunResult, String>) -> bool {
        let accepted = {
            let mut state = self.lock();
            match state.table.complete(worker, key, self.now_ms()) {
                CompleteOutcome::Accepted => {
                    let cell_outcome = match outcome {
                        Ok(result) => CellOutcome::Completed(Box::new(result)),
                        Err(message) => CellOutcome::Failed(message),
                    };
                    state.payloads.remove(&key);
                    state.outcomes.insert(key, cell_outcome);
                    self.sync_metrics_locked(&state);
                    true
                }
                CompleteOutcome::Stale => {
                    self.sync_metrics_locked(&state);
                    false
                }
            }
        };
        self.cv.notify_all();
        accepted
    }

    /// Drops a worker (its connection closed or errored) and expires every
    /// lease it held.
    pub fn disconnect(&self, worker: u64) {
        {
            let mut state = self.lock();
            let events = state.table.disconnect(worker);
            Self::apply_events(&mut state, events);
            state.last_heartbeat_ms.remove(&worker);
            self.sync_metrics_locked(&state);
        }
        self.drop_worker_series(worker);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lease::LeaseConfig;
    use comet_sim::{MechanismKind, SimConfig};
    use std::sync::Arc;

    fn smoke_cell() -> (Runner, CellSpec) {
        (Runner::new(SimConfig::quick_test()), CellSpec::single("429.mcf", MechanismKind::Baseline, 1000))
    }

    #[test]
    fn zero_workers_degrades_immediately() {
        let fleet = Fleet::new(LeaseConfig::default());
        let (runner, cell) = smoke_cell();
        assert!(matches!(fleet.run_cell(&runner, &cell), FleetDisposition::RunLocal(LocalReason::NoWorkers)));
    }

    #[test]
    fn draining_rejects_submits_and_pulls() {
        let fleet = Fleet::new(LeaseConfig::default());
        let worker = fleet.register(1);
        fleet.drain();
        let (runner, cell) = smoke_cell();
        assert!(matches!(fleet.run_cell(&runner, &cell), FleetDisposition::Draining));
        assert_eq!(fleet.pull(worker, 0), PullOutcome::Draining);
    }

    #[test]
    fn a_worker_thread_completes_a_cell_through_the_fleet() {
        let fleet = Arc::new(Fleet::new(LeaseConfig { lease_timeout_ms: 2_000, max_redeliveries: 1 }));
        let worker = fleet.register(1);
        let server = {
            let fleet = fleet.clone();
            std::thread::spawn(move || loop {
                match fleet.pull(worker, 200) {
                    PullOutcome::Job(key, _, payload) => {
                        let job = crate::wire::decode_job(&payload).unwrap();
                        let result = job.cell.run(&job.runner).unwrap();
                        assert!(fleet.complete(worker, key, Ok(result)));
                        return;
                    }
                    PullOutcome::Empty => continue,
                    other => panic!("unexpected pull outcome: {other:?}"),
                }
            })
        };
        let (runner, cell) = smoke_cell();
        let local = cell.run(&runner).unwrap();
        match fleet.run_cell(&runner, &cell) {
            FleetDisposition::Completed(remote) => {
                assert_eq!(
                    crate::store::result_projection(&remote),
                    crate::store::result_projection(&local),
                    "remote result must be bit-exact with the local run"
                );
            }
            other => panic!("expected completion, got {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn unknown_workers_are_told_to_reregister() {
        let fleet = Fleet::new(LeaseConfig::default());
        assert_eq!(fleet.pull(99, 0), PullOutcome::UnknownWorker);
        assert!(!fleet.heartbeat(99));
        let (runner, cell) = smoke_cell();
        let key = cell_key(&runner, &cell);
        assert!(!fleet.complete(99, key, Err("nope".to_string())));
    }
}
