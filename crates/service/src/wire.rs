//! Wire codec for shipping cells to fleet workers.
//!
//! The coordinator dispatches a cell as its [`canonical_cell_form`] — the
//! exact `{schema, config, seed, loop, cell}` JSON the cache key is hashed
//! from — so the job payload *is* the cell's identity: nothing can ride
//! along uncovered by the key. The vendored serde stand-in serializes but
//! does not deserialize, so this module hand-decodes the value tree back
//! into [`SimConfig`], seed, [`LoopMode`], and [`CellSpec`].
//!
//! Losslessness is enforced, not assumed: [`decode_job`] re-encodes the
//! reconstructed runner identity through [`canonical_cell_form`] and demands
//! the bytes match the payload exactly. A worker whose decode drifted (field
//! added, float re-rendered, variant renamed) refuses the job instead of
//! completing a cell under a key it no longer matches — the schema tag plus
//! this round-trip check is what keeps a mixed-version fleet from silently
//! poisoning the coordinator's content-addressed cache.

use crate::error::ServiceError;
use crate::json;
use crate::key::{canonical_cell_form, KEY_SCHEMA};
use comet_dram::{Cycle, DramConfig, DramGeometry, EnergyModel, TimingParams};
use comet_sim::experiments::CellSpec;
use comet_sim::experiments::WorkloadSpec;
use comet_sim::{AddressScheme, ControllerConfig, CoreConfig, LoopMode, MechanismKind, Runner, SimConfig};
use comet_trace::AttackKind;
use serde::Value;

/// A decoded job: everything needed to run one cell bit-exactly.
#[derive(Debug, Clone)]
pub struct WireJob {
    /// The reconstructed runner identity (config + seed + loop mode).
    pub runner: Runner,
    /// The cell to run.
    pub cell: CellSpec,
}

fn protocol(message: impl Into<String>) -> ServiceError {
    ServiceError::Protocol(message.into())
}

fn field<'a>(value: &'a Value, name: &str) -> Result<&'a Value, ServiceError> {
    json::get(value, name).ok_or_else(|| protocol(format!("job payload missing field {name:?}")))
}

fn u64_field(value: &Value, name: &str) -> Result<u64, ServiceError> {
    json::as_u64(field(value, name)?).ok_or_else(|| protocol(format!("field {name:?} must be an integer")))
}

fn usize_field(value: &Value, name: &str) -> Result<usize, ServiceError> {
    Ok(u64_field(value, name)? as usize)
}

fn u32_field(value: &Value, name: &str) -> Result<u32, ServiceError> {
    Ok(u64_field(value, name)? as u32)
}

fn cycle_field(value: &Value, name: &str) -> Result<Cycle, ServiceError> {
    u64_field(value, name)
}

fn f64_field(value: &Value, name: &str) -> Result<f64, ServiceError> {
    json::as_f64(field(value, name)?).ok_or_else(|| protocol(format!("field {name:?} must be a number")))
}

fn str_field<'a>(value: &'a Value, name: &str) -> Result<&'a str, ServiceError> {
    json::as_str(field(value, name)?).ok_or_else(|| protocol(format!("field {name:?} must be a string")))
}

/// An enum encoded by the vendored serde: a bare string for unit variants,
/// a one-entry map for data-carrying variants.
fn variant(value: &Value) -> Result<(&str, Option<&Value>), ServiceError> {
    match value {
        Value::Str(name) => Ok((name, None)),
        Value::Map(entries) if entries.len() == 1 => Ok((&entries[0].0, Some(&entries[0].1))),
        _ => Err(protocol("enum values must be a string or a one-entry object")),
    }
}

fn decode_geometry(value: &Value) -> Result<DramGeometry, ServiceError> {
    Ok(DramGeometry {
        channels: usize_field(value, "channels")?,
        ranks_per_channel: usize_field(value, "ranks_per_channel")?,
        bank_groups_per_rank: usize_field(value, "bank_groups_per_rank")?,
        banks_per_bank_group: usize_field(value, "banks_per_bank_group")?,
        rows_per_bank: usize_field(value, "rows_per_bank")?,
        columns_per_row: usize_field(value, "columns_per_row")?,
        bytes_per_column: usize_field(value, "bytes_per_column")?,
        devices_per_rank: usize_field(value, "devices_per_rank")?,
    })
}

fn decode_timing(value: &Value) -> Result<TimingParams, ServiceError> {
    Ok(TimingParams {
        t_ck_ns: f64_field(value, "t_ck_ns")?,
        t_rcd: cycle_field(value, "t_rcd")?,
        t_rp: cycle_field(value, "t_rp")?,
        t_ras: cycle_field(value, "t_ras")?,
        t_rc: cycle_field(value, "t_rc")?,
        t_rrd_l: cycle_field(value, "t_rrd_l")?,
        t_rrd_s: cycle_field(value, "t_rrd_s")?,
        t_faw: cycle_field(value, "t_faw")?,
        cl: cycle_field(value, "cl")?,
        cwl: cycle_field(value, "cwl")?,
        burst_cycles: cycle_field(value, "burst_cycles")?,
        t_ccd_l: cycle_field(value, "t_ccd_l")?,
        t_ccd_s: cycle_field(value, "t_ccd_s")?,
        t_wr: cycle_field(value, "t_wr")?,
        t_wtr: cycle_field(value, "t_wtr")?,
        t_rtp: cycle_field(value, "t_rtp")?,
        t_rfc: cycle_field(value, "t_rfc")?,
        t_refi: cycle_field(value, "t_refi")?,
        t_refw: cycle_field(value, "t_refw")?,
    })
}

fn decode_energy(value: &Value) -> Result<EnergyModel, ServiceError> {
    Ok(EnergyModel {
        vdd: f64_field(value, "vdd")?,
        idd0_ma: f64_field(value, "idd0_ma")?,
        idd2n_ma: f64_field(value, "idd2n_ma")?,
        idd3n_ma: f64_field(value, "idd3n_ma")?,
        idd4r_ma: f64_field(value, "idd4r_ma")?,
        idd4w_ma: f64_field(value, "idd4w_ma")?,
        idd5b_ma: f64_field(value, "idd5b_ma")?,
        devices_per_rank: usize_field(value, "devices_per_rank")?,
    })
}

fn decode_controller(value: &Value) -> Result<ControllerConfig, ServiceError> {
    Ok(ControllerConfig {
        read_queue_size: usize_field(value, "read_queue_size")?,
        write_queue_size: usize_field(value, "write_queue_size")?,
        column_cap: u32_field(value, "column_cap")?,
        write_drain_high: usize_field(value, "write_drain_high")?,
        write_drain_low: usize_field(value, "write_drain_low")?,
        counter_access_cycles: cycle_field(value, "counter_access_cycles")?,
    })
}

fn decode_scheme(value: &Value) -> Result<AddressScheme, ServiceError> {
    match variant(value)? {
        ("RoRaBgBaCoCh", None) => Ok(AddressScheme::RoRaBgBaCoCh),
        ("RoCoRaBgBaCh", None) => Ok(AddressScheme::RoCoRaBgBaCh),
        ("RoRaBgBaCoChXor", None) => Ok(AddressScheme::RoRaBgBaCoChXor),
        ("RoRaBgBaChCo", None) => Ok(AddressScheme::RoRaBgBaChCo),
        (other, _) => Err(protocol(format!("unknown address scheme {other:?}"))),
    }
}

fn decode_core(value: &Value) -> Result<CoreConfig, ServiceError> {
    Ok(CoreConfig {
        freq_ghz: f64_field(value, "freq_ghz")?,
        retire_width: u32_field(value, "retire_width")?,
        window_size: u64_field(value, "window_size")?,
        scheme: decode_scheme(field(value, "scheme")?)?,
    })
}

fn decode_sim_config(value: &Value) -> Result<SimConfig, ServiceError> {
    let dram = field(value, "dram")?;
    Ok(SimConfig {
        dram: DramConfig {
            geometry: decode_geometry(field(dram, "geometry")?)?,
            timing: decode_timing(field(dram, "timing")?)?,
            energy: decode_energy(field(dram, "energy")?)?,
        },
        controller: decode_controller(field(value, "controller")?)?,
        core: decode_core(field(value, "core")?)?,
        warmup_cycles: cycle_field(value, "warmup_cycles")?,
        sim_cycles: cycle_field(value, "sim_cycles")?,
    })
}

fn decode_mechanism(value: &Value) -> Result<MechanismKind, ServiceError> {
    match variant(value)? {
        ("Baseline", None) => Ok(MechanismKind::Baseline),
        ("Comet", None) => Ok(MechanismKind::Comet),
        ("Graphene", None) => Ok(MechanismKind::Graphene),
        ("Hydra", None) => Ok(MechanismKind::Hydra),
        ("Rega", None) => Ok(MechanismKind::Rega),
        ("Para", None) => Ok(MechanismKind::Para),
        ("BlockHammer", None) => Ok(MechanismKind::BlockHammer),
        ("PerRow", None) => Ok(MechanismKind::PerRow),
        ("CometCustom", Some(fields)) => Ok(MechanismKind::CometCustom {
            n_hash: usize_field(fields, "n_hash")?,
            n_counters: usize_field(fields, "n_counters")?,
            rat_entries: usize_field(fields, "rat_entries")?,
            reset_divisor: u64_field(fields, "reset_divisor")?,
            history_length: usize_field(fields, "history_length")?,
            eprt_percent: u32_field(fields, "eprt_percent")?,
        }),
        (other, _) => Err(protocol(format!("unknown mechanism {other:?}"))),
    }
}

fn decode_attack(value: &Value) -> Result<AttackKind, ServiceError> {
    match variant(value)? {
        ("Traditional", Some(fields)) => {
            Ok(AttackKind::Traditional { rows_per_bank: usize_field(fields, "rows_per_bank")? })
        }
        ("CometTargeted", Some(fields)) => {
            Ok(AttackKind::CometTargeted { rows_per_bank: usize_field(fields, "rows_per_bank")? })
        }
        ("HydraTargeted", Some(fields)) => Ok(AttackKind::HydraTargeted {
            groups_per_bank: usize_field(fields, "groups_per_bank")?,
            rows_per_group: usize_field(fields, "rows_per_group")?,
        }),
        (other, _) => Err(protocol(format!("unknown attack kind {other:?}"))),
    }
}

fn decode_workload(value: &Value) -> Result<WorkloadSpec, ServiceError> {
    match variant(value)? {
        ("Single", Some(fields)) => {
            Ok(WorkloadSpec::Single { workload: str_field(fields, "workload")?.to_string() })
        }
        ("Homogeneous", Some(fields)) => Ok(WorkloadSpec::Homogeneous {
            workload: str_field(fields, "workload")?.to_string(),
            cores: usize_field(fields, "cores")?,
        }),
        ("Attacked", Some(fields)) => Ok(WorkloadSpec::Attacked {
            workload: str_field(fields, "workload")?.to_string(),
            attack: decode_attack(field(fields, "attack")?)?,
        }),
        ("Mix", Some(fields)) => Ok(WorkloadSpec::Mix {
            name: str_field(fields, "name")?.to_string(),
            workloads: json::as_seq(field(fields, "workloads")?)
                .ok_or_else(|| protocol("\"workloads\" must be an array"))?
                .iter()
                .map(|item| {
                    json::as_str(item)
                        .map(str::to_string)
                        .ok_or_else(|| protocol("workload names must be strings"))
                })
                .collect::<Result<_, _>>()?,
        }),
        (other, _) => Err(protocol(format!("unknown workload placement {other:?}"))),
    }
}

fn decode_cell(value: &Value) -> Result<CellSpec, ServiceError> {
    Ok(CellSpec {
        workload: decode_workload(field(value, "workload")?)?,
        mechanism: decode_mechanism(field(value, "mechanism")?)?,
        nrh: u64_field(value, "nrh")?,
    })
}

fn decode_loop_mode(name: &str) -> Result<LoopMode, ServiceError> {
    match name {
        "event" => Ok(LoopMode::EventDriven),
        "dense" => Ok(LoopMode::DenseReference),
        other => Err(protocol(format!("unknown loop mode {other:?}"))),
    }
}

/// Decodes one job payload (the canonical cell form as text) back into a
/// runnable cell, verifying the schema tag and that the reconstruction
/// re-encodes to the payload byte-for-byte.
pub fn decode_job(payload: &str) -> Result<WireJob, ServiceError> {
    let value = json::parse(payload)?;
    let schema = str_field(&value, "schema")?;
    if schema != KEY_SCHEMA {
        return Err(protocol(format!(
            "job schema {schema:?} does not match this worker's {KEY_SCHEMA:?}; refusing the cell"
        )));
    }
    let config = decode_sim_config(field(&value, "config")?)?;
    let seed = u64_field(&value, "seed")?;
    let loop_mode = decode_loop_mode(str_field(&value, "loop")?)?;
    let cell = decode_cell(field(&value, "cell")?)?;
    let runner = Runner::with_seed(config, seed).with_loop_mode(loop_mode);
    let reencoded = canonical_cell_form(&runner, &cell);
    if reencoded != payload {
        return Err(protocol(
            "decoded job does not re-encode to its payload (lossy decode); refusing the cell".to_string(),
        ));
    }
    Ok(WireJob { runner, cell })
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_sim::experiments::ExperimentScope;

    #[test]
    fn every_workload_placement_round_trips() {
        let runner = Runner::with_seed(ExperimentScope::Smoke.sim_config(), 7)
            .with_loop_mode(LoopMode::DenseReference);
        let cells = [
            CellSpec::single("429.mcf", MechanismKind::Comet, 1000),
            CellSpec::homogeneous("462.libquantum", 4, MechanismKind::Hydra, 250),
            CellSpec::attacked(
                "473.astar",
                AttackKind::HydraTargeted { groups_per_bank: 16, rows_per_group: 8 },
                MechanismKind::Graphene,
                500,
            ),
            CellSpec::attacked(
                "429.mcf",
                AttackKind::CometTargeted { rows_per_bank: 64 },
                MechanismKind::CometCustom {
                    n_hash: 4,
                    n_counters: 512,
                    rat_entries: 128,
                    reset_divisor: 3,
                    history_length: 256,
                    eprt_percent: 25,
                },
                125,
            ),
            CellSpec::mix(
                "mixMH03",
                vec!["429.mcf".to_string(), "473.astar".to_string()],
                MechanismKind::Para,
                1000,
            ),
        ];
        for cell in cells {
            let payload = canonical_cell_form(&runner, &cell);
            let job = decode_job(&payload).unwrap_or_else(|e| panic!("{}: {e}", cell.label()));
            assert_eq!(job.cell, cell);
            assert_eq!(job.runner.seed(), 7);
            assert_eq!(job.runner.loop_mode(), LoopMode::DenseReference);
            assert_eq!(canonical_cell_form(&job.runner, &job.cell), payload);
        }
    }

    #[test]
    fn nondefault_configs_round_trip() {
        let mut config = SimConfig::quick_test().with_ranks(4).with_channels(2);
        config.core.scheme = AddressScheme::RoRaBgBaCoChXor;
        let runner = Runner::new(config);
        let cell = CellSpec::single("429.mcf", MechanismKind::Baseline, 1000);
        let payload = canonical_cell_form(&runner, &cell);
        let job = decode_job(&payload).unwrap();
        assert_eq!(canonical_cell_form(&job.runner, &job.cell), payload);
        assert_eq!(job.runner.config().core.scheme, AddressScheme::RoRaBgBaCoChXor);
        assert_eq!(job.runner.config().dram.geometry.channels, 2);
    }

    #[test]
    fn schema_mismatch_and_corrupt_payloads_are_refused() {
        let runner = Runner::new(SimConfig::quick_test());
        let cell = CellSpec::single("429.mcf", MechanismKind::Comet, 1000);
        let payload = canonical_cell_form(&runner, &cell);
        let wrong_schema = payload.replace(KEY_SCHEMA, "comet-cell/v1");
        assert!(
            matches!(decode_job(&wrong_schema), Err(ServiceError::Protocol(message)) if message.contains("schema"))
        );
        assert!(decode_job("not json").is_err());
        assert!(decode_job("{\"schema\":\"comet-cell/v2\"}").is_err());
    }
}
