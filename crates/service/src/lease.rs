//! The lease table: a pure state machine for at-least-once cell assignment.
//!
//! The distributed fleet hands each dispatched cell to a worker under a
//! *lease* — a deadline by which the worker must either complete the cell or
//! prove it is still alive (heartbeats extend every lease the worker holds).
//! A missed deadline, a dropped work connection, or an explicitly reported
//! worker death expires the lease and requeues the cell at the front of the
//! dispatch queue with its redelivery count incremented; once the count
//! exceeds the configured bound the cell is *exhausted* and surfaces as a
//! typed error instead of looping forever on a cell that kills whoever runs
//! it.
//!
//! Everything here is deliberately free of clocks, sockets, and threads:
//! time is an explicit `now` parameter in milliseconds, and every transition
//! is a plain method call returning plain data. That makes the machine
//! exhaustively testable — the property test in `tests/lease_props.rs`
//! drives random interleavings of {submit, register, dispatch, heartbeat,
//! expiry, complete, disconnect} and asserts the two safety properties the
//! fleet is built on: every submitted cell is delivered to completion (or
//! exhausted/drained, never lost), and no cell is ever redelivered more than
//! the bound. [`crate::fleet`] wraps this table in a mutex/condvar and real
//! time.
//!
//! Determinism note: per-lease deadlines carry a *deterministic* jitter
//! hashed from the worker id and the redelivery count, so a fleet of workers
//! whose leases were granted in the same tick does not expire them in one
//! synchronized stampede — and yet every run of the same schedule expires
//! them at exactly the same points.

use crate::key::{fnv1a_128, CellKey};
use std::collections::{HashMap, VecDeque};

/// Tuning knobs for the lease table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseConfig {
    /// Base lease/heartbeat deadline: a worker that has not heartbeat (or
    /// completed something) for this long is presumed dead and its leases
    /// expire. The effective per-lease deadline adds a deterministic jitter
    /// in `[0, lease_timeout_ms / 4)`.
    pub lease_timeout_ms: u64,
    /// Redeliveries tolerated per cell before it is exhausted. The first
    /// delivery is not a redelivery: a cell may be handed out
    /// `max_redeliveries + 1` times in total.
    pub max_redeliveries: u32,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig { lease_timeout_ms: 2_000, max_redeliveries: 3 }
    }
}

/// Registered-worker bookkeeping.
#[derive(Debug, Clone)]
struct WorkerState {
    /// Advertised simulation threads (capability advertisement; informational).
    threads: usize,
    /// Timestamp of the worker's last sign of life (registration, heartbeat,
    /// or completion).
    last_seen_ms: u64,
}

/// Where one submitted cell currently is.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JobState {
    /// Waiting for a worker to pull it.
    Pending,
    /// Leased to a worker until the deadline.
    Leased { worker: u64, deadline_ms: u64 },
}

#[derive(Debug, Clone)]
struct JobSlot {
    state: JobState,
    redeliveries: u32,
}

/// What happened to a cell, reported by [`LeaseTable::tick`] and the other
/// transition methods so the caller (the fleet) can resolve waiters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobEvent {
    /// The cell's lease expired and it was requeued for redelivery.
    Requeued {
        /// The cell.
        key: CellKey,
        /// Its redelivery count after the requeue.
        redeliveries: u32,
    },
    /// The cell's redelivery budget is spent; it has been removed from the
    /// table and must surface as a typed `LeaseExhausted` error.
    Exhausted {
        /// The cell.
        key: CellKey,
        /// Redeliveries attempted before giving up.
        redeliveries: u32,
    },
}

/// Outcome of a completion report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompleteOutcome {
    /// The reporting worker held the live lease: the result is authoritative.
    Accepted,
    /// The lease had already expired (and the cell was requeued, completed
    /// elsewhere, or exhausted): the report is a duplicate and must be
    /// dropped — the cache layer has already absorbed or will absorb the
    /// authoritative copy.
    Stale,
}

/// Monotonic counters the table maintains; mirrored into the service stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaseCounters {
    /// Leases that expired (missed heartbeat, dropped connection, reported
    /// worker death).
    pub leases_expired: u64,
    /// Cells handed out again after a lease expiry.
    pub redeliveries: u64,
    /// Cells that ran out of redeliveries.
    pub exhausted: u64,
    /// Completion reports that arrived after their lease had expired.
    pub stale_completions: u64,
}

/// The pure lease state machine. See the module docs.
#[derive(Debug)]
pub struct LeaseTable {
    config: LeaseConfig,
    workers: HashMap<u64, WorkerState>,
    next_worker_id: u64,
    /// Dispatch queue: redelivered cells go to the *front* so a cell that
    /// already lost time to a dead worker is not also penalized with a fresh
    /// wait behind the backlog.
    queue: VecDeque<CellKey>,
    jobs: HashMap<CellKey, JobSlot>,
    counters: LeaseCounters,
}

impl LeaseTable {
    /// An empty table under `config`.
    pub fn new(config: LeaseConfig) -> Self {
        LeaseTable {
            config,
            workers: HashMap::new(),
            next_worker_id: 1,
            queue: VecDeque::new(),
            jobs: HashMap::new(),
            counters: LeaseCounters::default(),
        }
    }

    /// The table's configuration.
    pub fn config(&self) -> &LeaseConfig {
        &self.config
    }

    /// Counter snapshot.
    pub fn counters(&self) -> LeaseCounters {
        self.counters
    }

    /// Workers currently considered live.
    pub fn workers_live(&self) -> usize {
        self.workers.len()
    }

    /// Cells currently waiting for a worker.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Cells currently leased out.
    pub fn leased(&self) -> usize {
        self.jobs.values().filter(|slot| matches!(slot.state, JobState::Leased { .. })).count()
    }

    /// Whether `key` is currently tracked (pending or leased).
    pub fn contains(&self, key: CellKey) -> bool {
        self.jobs.contains_key(&key)
    }

    /// Registers a worker, returning its id. `threads` is the worker's
    /// capability advertisement.
    pub fn register(&mut self, threads: usize, now_ms: u64) -> u64 {
        let id = self.next_worker_id;
        self.next_worker_id += 1;
        self.workers.insert(id, WorkerState { threads, last_seen_ms: now_ms });
        id
    }

    /// Advertised threads of a live worker.
    pub fn worker_threads(&self, worker: u64) -> Option<usize> {
        self.workers.get(&worker).map(|w| w.threads)
    }

    /// Submits a cell for dispatch. Duplicate submissions of a tracked key
    /// are ignored (the caller's cache layer already dedupes cells; this is
    /// a backstop, not a feature).
    pub fn submit(&mut self, key: CellKey) {
        if self.jobs.contains_key(&key) {
            return;
        }
        self.jobs.insert(key, JobSlot { state: JobState::Pending, redeliveries: 0 });
        self.queue.push_back(key);
    }

    /// Removes a pending cell without dispatching it (the fleet degrades it
    /// to local execution, e.g. after the last worker died). Leased cells
    /// are left alone — their lease will expire or complete.
    pub fn withdraw_pending(&mut self, key: CellKey) -> bool {
        if matches!(self.jobs.get(&key), Some(JobSlot { state: JobState::Pending, .. })) {
            self.jobs.remove(&key);
            self.queue.retain(|&queued| queued != key);
            true
        } else {
            false
        }
    }

    /// Hands the next pending cell to `worker` under a fresh lease, if the
    /// worker is live and work is available. Also refreshes the worker's
    /// liveness (a pull is as good as a heartbeat).
    pub fn dispatch(&mut self, worker: u64, now_ms: u64) -> Option<(CellKey, u32)> {
        let state = self.workers.get_mut(&worker)?;
        state.last_seen_ms = now_ms;
        let key = self.queue.pop_front()?;
        let redeliveries = self.jobs.get(&key).expect("queued keys are tracked").redeliveries;
        let deadline_ms = now_ms + self.lease_duration_ms(worker, redeliveries);
        let slot = self.jobs.get_mut(&key).expect("queued keys are tracked");
        debug_assert_eq!(slot.state, JobState::Pending);
        slot.state = JobState::Leased { worker, deadline_ms };
        Some((key, redeliveries))
    }

    /// The effective lease duration for one grant: the base timeout plus a
    /// deterministic jitter hashed from the worker id and redelivery count.
    fn lease_duration_ms(&self, worker: u64, redeliveries: u32) -> u64 {
        let spread = (self.config.lease_timeout_ms / 4).max(1);
        let mut seed = [0u8; 12];
        seed[..8].copy_from_slice(&worker.to_le_bytes());
        seed[8..].copy_from_slice(&redeliveries.to_le_bytes());
        self.config.lease_timeout_ms + (fnv1a_128(&seed) % spread as u128) as u64
    }

    /// Records a heartbeat: refreshes the worker's liveness and extends
    /// every lease it holds. Returns `false` for unknown workers (already
    /// presumed dead and deregistered — the worker must re-register).
    pub fn heartbeat(&mut self, worker: u64, now_ms: u64) -> bool {
        let Some(state) = self.workers.get_mut(&worker) else { return false };
        state.last_seen_ms = now_ms;
        let extensions: Vec<(CellKey, u64)> = self
            .jobs
            .iter()
            .filter_map(|(&key, slot)| match slot.state {
                JobState::Leased { worker: owner, .. } if owner == worker => {
                    Some((key, now_ms + self.lease_duration_ms(worker, slot.redeliveries)))
                }
                _ => None,
            })
            .collect();
        for (key, deadline) in extensions {
            if let Some(JobSlot { state: JobState::Leased { deadline_ms, .. }, .. }) = self.jobs.get_mut(&key)
            {
                *deadline_ms = deadline;
            }
        }
        true
    }

    /// Reports a completion (success or failure alike — the *report*
    /// arriving is what discharges the lease; what it said is the fleet's
    /// business). Returns whether the report was authoritative or a stale
    /// duplicate. An accepted completion also refreshes the worker's
    /// liveness and removes the cell from the table.
    pub fn complete(&mut self, worker: u64, key: CellKey, now_ms: u64) -> CompleteOutcome {
        let authoritative = matches!(
            self.jobs.get(&key),
            Some(JobSlot { state: JobState::Leased { worker: owner, .. }, .. }) if *owner == worker
        );
        if !authoritative {
            self.counters.stale_completions += 1;
            return CompleteOutcome::Stale;
        }
        self.jobs.remove(&key);
        if let Some(state) = self.workers.get_mut(&worker) {
            state.last_seen_ms = now_ms;
        }
        CompleteOutcome::Accepted
    }

    /// Drops a worker (connection loss, explicit goodbye, or supervision
    /// declaring it dead) and expires every lease it held. Returns the
    /// resulting per-cell events.
    pub fn disconnect(&mut self, worker: u64) -> Vec<JobEvent> {
        self.workers.remove(&worker);
        let held: Vec<CellKey> = self
            .jobs
            .iter()
            .filter_map(|(&key, slot)| match slot.state {
                JobState::Leased { worker: owner, .. } if owner == worker => Some(key),
                _ => None,
            })
            .collect();
        held.into_iter().map(|key| self.expire_lease(key)).collect()
    }

    /// Advances supervision to `now_ms`: workers silent past the timeout are
    /// deregistered (their leases expire), and individual leases past their
    /// jittered deadline expire even if their worker still heartbeats under
    /// a different clock skew. Returns every resulting cell event.
    pub fn tick(&mut self, now_ms: u64) -> Vec<JobEvent> {
        let mut events = Vec::new();
        let dead: Vec<u64> = self
            .workers
            .iter()
            .filter_map(|(&id, state)| {
                (now_ms.saturating_sub(state.last_seen_ms) > self.config.lease_timeout_ms).then_some(id)
            })
            .collect();
        for worker in dead {
            events.extend(self.disconnect(worker));
        }
        let overdue: Vec<CellKey> = self
            .jobs
            .iter()
            .filter_map(|(&key, slot)| match slot.state {
                JobState::Leased { deadline_ms, .. } if now_ms > deadline_ms => Some(key),
                _ => None,
            })
            .collect();
        for key in overdue {
            events.push(self.expire_lease(key));
        }
        events
    }

    /// Expires one leased cell: requeues it at the front if redeliveries
    /// remain, exhausts it otherwise.
    fn expire_lease(&mut self, key: CellKey) -> JobEvent {
        self.counters.leases_expired += 1;
        let slot = self.jobs.get_mut(&key).expect("expired keys are tracked");
        if slot.redeliveries >= self.config.max_redeliveries {
            let redeliveries = slot.redeliveries;
            self.jobs.remove(&key);
            self.counters.exhausted += 1;
            JobEvent::Exhausted { key, redeliveries }
        } else {
            slot.redeliveries += 1;
            slot.state = JobState::Pending;
            self.counters.redeliveries += 1;
            self.queue.push_front(key);
            JobEvent::Requeued { key, redeliveries: slot.redeliveries }
        }
    }

    /// Drains the table for shutdown: every pending and leased cell is
    /// removed and returned (the fleet rejects their waiters with a typed
    /// draining error), and every worker is forgotten.
    pub fn drain(&mut self) -> Vec<CellKey> {
        self.queue.clear();
        self.workers.clear();
        self.jobs.drain().map(|(key, _)| key).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> LeaseTable {
        LeaseTable::new(LeaseConfig { lease_timeout_ms: 100, max_redeliveries: 2 })
    }

    #[test]
    fn dispatch_completes_within_the_lease() {
        let mut t = table();
        let w = t.register(4, 0);
        t.submit(CellKey(1));
        let (key, redeliveries) = t.dispatch(w, 0).unwrap();
        assert_eq!((key, redeliveries), (CellKey(1), 0));
        assert!(t.tick(50).is_empty(), "inside the lease nothing expires");
        assert_eq!(t.complete(w, CellKey(1), 50), CompleteOutcome::Accepted);
        assert!(!t.contains(CellKey(1)));
        assert_eq!(t.counters(), LeaseCounters::default());
    }

    #[test]
    fn missed_heartbeats_expire_and_requeue_with_a_bound() {
        let mut t = table();
        let mut w = t.register(1, 0);
        t.submit(CellKey(7));
        // Deliver + expire three times: 2 redeliveries allowed, then exhausted.
        let mut now = 0;
        for round in 0..3 {
            let (key, redeliveries) = t.dispatch(w, now).unwrap();
            assert_eq!((key, redeliveries), (CellKey(7), round));
            now += 1_000; // way past timeout + jitter
            let events = t.tick(now);
            // The silent worker is deregistered too; re-register for the next round.
            assert_eq!(t.workers_live(), 0);
            if round < 2 {
                assert_eq!(events, vec![JobEvent::Requeued { key: CellKey(7), redeliveries: round + 1 }]);
                w = t.register(1, now);
            } else {
                assert_eq!(events, vec![JobEvent::Exhausted { key: CellKey(7), redeliveries: 2 }]);
            }
        }
        let counters = t.counters();
        assert_eq!(counters.leases_expired, 3);
        assert_eq!(counters.redeliveries, 2);
        assert_eq!(counters.exhausted, 1);
        assert!(!t.contains(CellKey(7)));
    }

    #[test]
    fn heartbeats_extend_leases_indefinitely() {
        let mut t = table();
        let w = t.register(1, 0);
        t.submit(CellKey(3));
        t.dispatch(w, 0).unwrap();
        let mut now = 0;
        for _ in 0..20 {
            now += 60; // between half and one timeout apart
            assert!(t.heartbeat(w, now));
            assert!(t.tick(now).is_empty(), "a heartbeating worker keeps its lease at t={now}");
        }
        assert_eq!(t.complete(w, CellKey(3), now), CompleteOutcome::Accepted);
    }

    #[test]
    fn duplicate_completions_after_expiry_are_stale() {
        let mut t = table();
        let a = t.register(1, 0);
        t.submit(CellKey(9));
        t.dispatch(a, 0).unwrap();
        t.tick(1_000); // a's lease expires, cell requeued
        let b = t.register(1, 1_000);
        assert_eq!(t.dispatch(b, 1_000), Some((CellKey(9), 1)));
        // The presumed-dead worker reports late: stale, not double-completed.
        assert_eq!(t.complete(a, CellKey(9), 1_050), CompleteOutcome::Stale);
        assert_eq!(t.complete(b, CellKey(9), 1_100), CompleteOutcome::Accepted);
        assert_eq!(t.counters().stale_completions, 1);
    }

    #[test]
    fn disconnect_requeues_to_the_front() {
        let mut t = table();
        let a = t.register(1, 0);
        t.submit(CellKey(1));
        t.submit(CellKey(2));
        t.dispatch(a, 0).unwrap(); // leases CellKey(1)
        assert_eq!(t.disconnect(a), vec![JobEvent::Requeued { key: CellKey(1), redeliveries: 1 }]);
        let b = t.register(1, 0);
        // The redelivered cell overtakes the never-delivered one.
        assert_eq!(t.dispatch(b, 0), Some((CellKey(1), 1)));
        assert_eq!(t.dispatch(b, 0), Some((CellKey(2), 0)));
    }

    #[test]
    fn drain_forgets_everything() {
        let mut t = table();
        let w = t.register(1, 0);
        t.submit(CellKey(1));
        t.submit(CellKey(2));
        t.dispatch(w, 0).unwrap();
        let mut drained = t.drain();
        drained.sort();
        assert_eq!(drained, vec![CellKey(1), CellKey(2)]);
        assert_eq!(t.workers_live(), 0);
        assert_eq!(t.pending(), 0);
        assert!(!t.heartbeat(w, 10), "drained workers are forgotten");
    }

    #[test]
    fn unknown_workers_cannot_dispatch_or_heartbeat() {
        let mut t = table();
        t.submit(CellKey(5));
        assert_eq!(t.dispatch(42, 0), None);
        assert!(!t.heartbeat(42, 0));
        assert_eq!(t.complete(42, CellKey(5), 0), CompleteOutcome::Stale, "pending cells reject completes");
    }

    #[test]
    fn lease_jitter_is_deterministic_and_bounded() {
        let t = table();
        let d1 = t.lease_duration_ms(1, 0);
        let d2 = t.lease_duration_ms(1, 0);
        assert_eq!(d1, d2);
        for worker in 0..16 {
            for redeliveries in 0..4 {
                let d = t.lease_duration_ms(worker, redeliveries);
                assert!((100..125).contains(&d), "jitter out of range: {d}");
            }
        }
    }
}
