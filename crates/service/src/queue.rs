//! A blocking priority job queue for the experiment daemon.
//!
//! Jobs pop highest-priority first; ties break FIFO by arrival sequence, so
//! equal-priority sweeps are served in submission order. `pop` blocks until a
//! job is available or the queue is closed (drain-then-`None`), which is the
//! worker-thread shutdown signal.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

struct Entry<T> {
    priority: i64,
    seq: u64,
    job: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then earlier sequence.
        self.priority.cmp(&other.priority).then(other.seq.cmp(&self.seq))
    }
}

struct Inner<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    closed: bool,
}

/// A thread-safe blocking priority queue.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    cv: Condvar,
}

impl<T> Default for JobQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> JobQueue<T> {
    /// An empty, open queue.
    pub fn new() -> Self {
        JobQueue {
            inner: Mutex::new(Inner { heap: BinaryHeap::new(), next_seq: 0, closed: false }),
            cv: Condvar::new(),
        }
    }

    /// Enqueues `job`. Returns `false` (dropping the job) if the queue is closed.
    pub fn push(&self, job: T, priority: i64) -> bool {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return false;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.heap.push(Entry { priority, seq, job });
        self.cv.notify_one();
        true
    }

    /// Blocks until a job is available (returning the highest-priority one)
    /// or the queue is closed and drained (returning `None`).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(entry) = inner.heap.pop() {
                return Some(entry.job);
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).expect("queue lock");
        }
    }

    /// Closes the queue: future pushes are rejected, poppers drain what is
    /// left and then receive `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.cv.notify_all();
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_by_priority_then_fifo() {
        let queue = JobQueue::new();
        assert!(queue.push("low", 1));
        assert!(queue.push("high", 10));
        assert!(queue.push("mid-a", 5));
        assert!(queue.push("mid-b", 5));
        assert_eq!(queue.pop(), Some("high"));
        assert_eq!(queue.pop(), Some("mid-a"));
        assert_eq!(queue.pop(), Some("mid-b"));
        assert_eq!(queue.pop(), Some("low"));
    }

    #[test]
    fn close_drains_then_returns_none() {
        let queue = JobQueue::new();
        queue.push(1, 0);
        queue.close();
        assert!(!queue.push(2, 0), "closed queue rejects pushes");
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        use std::sync::Arc;
        let queue = Arc::new(JobQueue::new());
        let popper = {
            let queue = queue.clone();
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        queue.push(42, 0);
        assert_eq!(popper.join().unwrap(), Some(42));
    }
}
