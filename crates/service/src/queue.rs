//! A blocking, bounded priority job queue for the experiment daemon.
//!
//! Jobs pop highest-priority first; ties break FIFO by arrival sequence, so
//! equal-priority sweeps are served in submission order. `pop` blocks until a
//! job is available or the queue is closed, which is the worker-thread
//! shutdown signal — a blocked `pop` wakes and returns `None` on close even
//! when the queue is empty, so the daemon never leaks a worker waiting on
//! the condvar.
//!
//! The queue is the service's admission bound: pushes past the configured
//! capacity are refused with [`Push::Overloaded`] (load shedding) instead of
//! growing without limit, and [`close_and_drain`](JobQueue::close_and_drain)
//! hands queued-but-unstarted jobs back to the caller at shutdown so they
//! can be rejected cleanly rather than silently dropped.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

struct Entry<T> {
    priority: i64,
    seq: u64,
    job: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then earlier sequence.
        self.priority.cmp(&other.priority).then(other.seq.cmp(&self.seq))
    }
}

struct Inner<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    closed: bool,
}

/// The outcome of a [`JobQueue::pop_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopWait<T> {
    /// The highest-priority queued job.
    Job(T),
    /// Nothing arrived within the timeout; the queue is still open.
    TimedOut,
    /// The queue is closed and empty.
    Closed,
}

/// The outcome of a [`JobQueue::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Push {
    /// The job was enqueued.
    Queued,
    /// The job was shed: the queue already holds `queued` jobs against a
    /// bound of `bound`. The job is dropped; clients should back off.
    Overloaded {
        /// Jobs queued at the moment of rejection.
        queued: usize,
        /// The configured admission bound.
        bound: usize,
    },
    /// The queue is closed (shutdown); the job is dropped.
    Closed,
}

/// A thread-safe blocking priority queue with an admission bound.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    cv: Condvar,
    bound: usize,
}

impl<T> Default for JobQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> JobQueue<T> {
    /// An empty, open, effectively unbounded queue.
    pub fn new() -> Self {
        Self::bounded(usize::MAX)
    }

    /// An empty, open queue that sheds pushes past `bound` queued jobs
    /// (`0` is clamped to 1: a queue that admits nothing deadlocks).
    pub fn bounded(bound: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner { heap: BinaryHeap::new(), next_seq: 0, closed: false }),
            cv: Condvar::new(),
            bound: bound.max(1),
        }
    }

    /// The admission bound.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Recovers the guard even if a holder panicked: the queue's invariants
    /// hold at every await point, so poisoning must not cascade into every
    /// connection thread.
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues `job`, unless the queue is closed or full (the job is then
    /// dropped and the outcome says why).
    pub fn push(&self, job: T, priority: i64) -> Push {
        let mut inner = self.lock();
        if inner.closed {
            return Push::Closed;
        }
        if inner.heap.len() >= self.bound {
            return Push::Overloaded { queued: inner.heap.len(), bound: self.bound };
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.heap.push(Entry { priority, seq, job });
        self.cv.notify_one();
        Push::Queued
    }

    /// Blocks until a job is available (returning the highest-priority one)
    /// or the queue is closed (returning `None`). After a plain
    /// [`close`](Self::close) remaining jobs are drained first; after
    /// [`close_and_drain`](Self::close_and_drain) the queue is already
    /// empty and every popper wakes to `None` immediately.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(entry) = inner.heap.pop() {
                return Some(entry.job);
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`pop`](Self::pop), but bounded: waits at most `timeout` for a
    /// job. The timed-out case lets pool workers re-check an external
    /// shutdown signal instead of parking on the condvar forever — the
    /// daemon's defence against any path that raises its shutdown flag
    /// without closing the queue.
    pub fn pop_timeout(&self, timeout: std::time::Duration) -> PopWait<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            if let Some(entry) = inner.heap.pop() {
                return PopWait::Job(entry.job);
            }
            if inner.closed {
                return PopWait::Closed;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return PopWait::TimedOut;
            }
            let (next, _) =
                self.cv.wait_timeout(inner, deadline - now).unwrap_or_else(PoisonError::into_inner);
            inner = next;
        }
    }

    /// Closes the queue: future pushes are rejected, poppers drain what is
    /// left and then receive `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }

    /// Closes the queue and takes every queued-but-unstarted job back, in
    /// pop (priority) order, so the caller can reject each one cleanly.
    /// In-flight jobs (already popped) are unaffected and run to completion.
    pub fn close_and_drain(&self) -> Vec<T> {
        let mut inner = self.lock();
        inner.closed = true;
        let mut drained = Vec::with_capacity(inner.heap.len());
        while let Some(entry) = inner.heap.pop() {
            drained.push(entry.job);
        }
        drop(inner);
        self.cv.notify_all();
        drained
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.lock().heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pops_by_priority_then_fifo() {
        let queue = JobQueue::new();
        assert_eq!(queue.push("low", 1), Push::Queued);
        assert_eq!(queue.push("high", 10), Push::Queued);
        assert_eq!(queue.push("mid-a", 5), Push::Queued);
        assert_eq!(queue.push("mid-b", 5), Push::Queued);
        assert_eq!(queue.pop(), Some("high"));
        assert_eq!(queue.pop(), Some("mid-a"));
        assert_eq!(queue.pop(), Some("mid-b"));
        assert_eq!(queue.pop(), Some("low"));
    }

    #[test]
    fn close_drains_then_returns_none() {
        let queue = JobQueue::new();
        queue.push(1, 0);
        queue.close();
        assert_eq!(queue.push(2, 0), Push::Closed, "closed queue rejects pushes");
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let queue = Arc::new(JobQueue::new());
        let popper = {
            let queue = queue.clone();
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        queue.push(42, 0);
        assert_eq!(popper.join().unwrap(), Some(42));
    }

    /// Regression test for the worker-leak shutdown path: workers blocked in
    /// `pop` on an *empty* queue must wake and return `None` as soon as the
    /// queue closes — the daemon's polling accept loop joins its scope at
    /// shutdown and would hang forever on a worker still parked on the
    /// condvar.
    #[test]
    fn blocked_pop_on_an_empty_queue_wakes_and_returns_none_on_close() {
        let queue: Arc<JobQueue<u32>> = Arc::new(JobQueue::new());
        let poppers: Vec<_> = (0..4)
            .map(|_| {
                let queue = queue.clone();
                std::thread::spawn(move || queue.pop())
            })
            .collect();
        // Let every popper reach the condvar wait before closing.
        std::thread::sleep(std::time::Duration::from_millis(30));
        queue.close();
        for popper in poppers {
            assert_eq!(popper.join().unwrap(), None, "blocked popper must wake to None");
        }
    }

    #[test]
    fn pushes_past_the_bound_are_shed() {
        let queue = JobQueue::bounded(2);
        assert_eq!(queue.push("a", 0), Push::Queued);
        assert_eq!(queue.push("b", 5), Push::Queued);
        assert_eq!(queue.push("c", 9), Push::Overloaded { queued: 2, bound: 2 });
        // Shedding never reorders admitted work; a pop frees a slot.
        assert_eq!(queue.pop(), Some("b"));
        assert_eq!(queue.push("d", 0), Push::Queued);
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn zero_bound_is_clamped_to_one() {
        let queue = JobQueue::bounded(0);
        assert_eq!(queue.bound(), 1);
        assert_eq!(queue.push(1, 0), Push::Queued);
    }

    #[test]
    fn pop_timeout_distinguishes_empty_from_closed() {
        let queue = JobQueue::new();
        queue.push(7, 0);
        assert_eq!(queue.pop_timeout(std::time::Duration::from_millis(10)), PopWait::Job(7));
        assert_eq!(queue.pop_timeout(std::time::Duration::from_millis(10)), PopWait::TimedOut);
        queue.close();
        assert_eq!(queue.pop_timeout(std::time::Duration::from_millis(10)), PopWait::Closed);
    }

    #[test]
    fn close_and_drain_hands_queued_jobs_back_in_pop_order() {
        let queue = JobQueue::new();
        queue.push("low", 1);
        queue.push("high", 10);
        queue.push("mid", 5);
        let drained = queue.close_and_drain();
        assert_eq!(drained, vec!["high", "mid", "low"]);
        assert_eq!(queue.pop(), None, "drained queue pops None immediately");
        assert_eq!(queue.push("late", 0), Push::Closed);
    }
}
