//! The caching experiment service: a [`CellBackend`] that memoizes every
//! completed cell in a content-addressed cache, deduplicates in-flight work
//! across concurrent requests, and fans novel cells out over the existing
//! [`ParallelExecutor`].
//!
//! Every cell resolves exactly one way:
//!
//! * **hit** — the key is `Ready` in the cache (memory, possibly loaded from
//!   disk at startup): the stored result is returned, no simulation runs.
//! * **owned miss** — this call claims the key (`Running`) and simulates it;
//!   the result is inserted, persisted, and waiters are woken.
//! * **in-flight** — another call owns the key: this call blocks on the
//!   condition variable instead of re-simulating. If the owner fails, the
//!   key is released and a waiter re-claims it (so an error in one request
//!   never wedges another).
//!
//! Determinism makes all of this sound: a cell's result is a pure function
//! of its key, so sharing a cached or in-flight result is bit-identical to
//! re-running it.

use crate::key::{cell_key, CellKey};
use crate::store::ResultStore;
use comet_sim::experiments::{CellBackend, CellSpec, ParallelExecutor};
use comet_sim::{RunResult, Runner, RunnerError};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One cache slot: a completed result, or a claim by an in-flight request.
#[derive(Debug, Clone)]
enum Slot {
    Ready(Arc<RunResult>),
    Running,
}

/// Monotonic service counters. All relaxed: they are reporting, not
/// synchronization (the cache mutex orders the data).
#[derive(Debug, Default)]
struct Counters {
    cells_requested: AtomicU64,
    cache_hits: AtomicU64,
    batch_shared: AtomicU64,
    inflight_waits: AtomicU64,
    simulated: AtomicU64,
    failed: AtomicU64,
    loaded_from_disk: AtomicU64,
}

/// A point-in-time snapshot of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ServiceStats {
    /// Cells requested across all `run_cells` calls (duplicates included).
    pub cells_requested: u64,
    /// Cells served from the completed-result cache.
    pub cache_hits: u64,
    /// Duplicate cells within a single batch, served from the batch's own runs.
    pub batch_shared: u64,
    /// Cells that waited on another request's in-flight simulation.
    pub inflight_waits: u64,
    /// Cells actually simulated.
    pub simulated: u64,
    /// Cell simulations that returned an error.
    pub failed: u64,
    /// Cache entries loaded from disk segments at startup.
    pub loaded_from_disk: u64,
}

impl ServiceStats {
    /// Fraction of requested cells served without a fresh simulation
    /// *attempt*. Failed cells count as fresh attempts (they ran and
    /// errored), so a batch full of failures reports a 0.0 rate rather than
    /// masquerading as cache hits.
    pub fn hit_rate(&self) -> f64 {
        if self.cells_requested == 0 {
            0.0
        } else {
            (1.0 - (self.simulated + self.failed) as f64 / self.cells_requested as f64).max(0.0)
        }
    }

    /// Counter-wise difference (`self - earlier`), for per-request deltas.
    pub fn delta_since(&self, earlier: &ServiceStats) -> ServiceStats {
        ServiceStats {
            cells_requested: self.cells_requested - earlier.cells_requested,
            cache_hits: self.cache_hits - earlier.cache_hits,
            batch_shared: self.batch_shared - earlier.batch_shared,
            inflight_waits: self.inflight_waits - earlier.inflight_waits,
            simulated: self.simulated - earlier.simulated,
            failed: self.failed - earlier.failed,
            loaded_from_disk: self.loaded_from_disk - earlier.loaded_from_disk,
        }
    }
}

/// The long-running experiment service. Cheap to share (`Arc`) across
/// connection handlers and job workers; all interior state is synchronized.
pub struct ExperimentService {
    executor: ParallelExecutor,
    cache: Mutex<HashMap<CellKey, Slot>>,
    cv: Condvar,
    store: Option<Mutex<ResultStore>>,
    counters: Counters,
}

impl std::fmt::Debug for ExperimentService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentService")
            .field("threads", &self.executor.threads())
            .field("cached_cells", &self.cached_cells())
            .field("persistent", &self.store.is_some())
            .finish()
    }
}

impl ExperimentService {
    /// An in-memory service (no persistence) over `executor`.
    pub fn new(executor: ParallelExecutor) -> Self {
        ExperimentService {
            executor,
            cache: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            store: None,
            counters: Counters::default(),
        }
    }

    /// A persistent service: existing segments under `dir` are streamed into
    /// the in-memory cache, and every newly completed cell is appended.
    pub fn with_cache_dir(
        executor: ParallelExecutor,
        dir: impl Into<std::path::PathBuf>,
    ) -> std::io::Result<Self> {
        let service = Self::new(executor);
        let store = ResultStore::open(dir)?;
        let mut loaded = 0u64;
        {
            let mut cache = service.cache.lock().expect("cache lock");
            for (key, result) in store.stream()? {
                // Last write wins (a later segment may re-record a key, e.g.
                // two processes sharing the directory), and only unique keys
                // count as loaded cells.
                if cache.insert(key, Slot::Ready(Arc::new(result))).is_none() {
                    loaded += 1;
                }
            }
        }
        service.counters.loaded_from_disk.store(loaded, Ordering::Relaxed);
        Ok(ExperimentService { store: Some(Mutex::new(store)), ..service })
    }

    /// Worker threads of the underlying executor.
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// Completed cells currently cached in memory.
    pub fn cached_cells(&self) -> usize {
        self.cache.lock().expect("cache lock").values().filter(|slot| matches!(slot, Slot::Ready(_))).count()
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            cells_requested: self.counters.cells_requested.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            batch_shared: self.counters.batch_shared.load(Ordering::Relaxed),
            inflight_waits: self.counters.inflight_waits.load(Ordering::Relaxed),
            simulated: self.counters.simulated.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
            loaded_from_disk: self.counters.loaded_from_disk.load(Ordering::Relaxed),
        }
    }

    /// Looks one cell up without running anything.
    pub fn peek(&self, runner: &Runner, cell: &CellSpec) -> Option<Arc<RunResult>> {
        match self.cache.lock().expect("cache lock").get(&cell_key(runner, cell)) {
            Some(Slot::Ready(result)) => Some(result.clone()),
            _ => None,
        }
    }

    /// Records `result` for `key` and wakes waiters. Persistence errors are
    /// reported to stderr but never fail the request — the cache stays
    /// correct in memory either way.
    fn complete(&self, key: CellKey, result: Arc<RunResult>) {
        self.cache.lock().expect("cache lock").insert(key, Slot::Ready(result.clone()));
        self.cv.notify_all();
        if let Some(store) = &self.store {
            if let Err(error) = store.lock().expect("store lock").append(key, &result) {
                eprintln!("comet-service: warning: could not persist cell {key}: {error}");
            }
        }
    }

    /// Releases a failed claim and wakes waiters so one of them can re-claim.
    fn release(&self, key: CellKey) {
        self.cache.lock().expect("cache lock").remove(&key);
        self.cv.notify_all();
    }
}

/// Unwind guard over the `Running` claims one `run_cells` call holds.
///
/// If a cell simulation panics, the panic propagates out of `run_cells` —
/// but without this guard the call's claims would stay `Running` forever and
/// every waiter (and every future request for those keys) would block
/// indefinitely. The guard releases whatever tracked keys are still
/// `Running` on drop, so waiters re-claim and re-run them; keys are
/// untracked as they resolve, making the normal-path drop a no-op.
struct ClaimGuard<'a> {
    service: &'a ExperimentService,
    keys: std::collections::HashSet<CellKey>,
}

impl<'a> ClaimGuard<'a> {
    fn new(service: &'a ExperimentService) -> Self {
        ClaimGuard { service, keys: std::collections::HashSet::new() }
    }

    fn track(&mut self, key: CellKey) {
        self.keys.insert(key);
    }

    fn untrack(&mut self, key: CellKey) {
        self.keys.remove(&key);
    }
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if self.keys.is_empty() {
            return;
        }
        // The panic happened outside the cache lock (simulation code), but
        // recover from poisoning anyway: a wedged Drop here would defeat the
        // guard's whole purpose.
        let mut cache = match self.service.cache.lock() {
            Ok(cache) => cache,
            Err(poisoned) => poisoned.into_inner(),
        };
        for key in &self.keys {
            if matches!(cache.get(key), Some(Slot::Running)) {
                cache.remove(key);
            }
        }
        drop(cache);
        self.service.cv.notify_all();
    }
}

impl CellBackend for ExperimentService {
    fn run_cells(&self, runner: &Runner, cells: &[CellSpec]) -> Result<Vec<RunResult>, RunnerError> {
        self.counters.cells_requested.fetch_add(cells.len() as u64, Ordering::Relaxed);
        let keys: Vec<CellKey> = cells.iter().map(|cell| cell_key(runner, cell)).collect();
        // First batch position of each unique key (for re-running reclaimed
        // foreign cells and for error attribution).
        let mut first_index: HashMap<CellKey, usize> = HashMap::with_capacity(keys.len());
        for (index, &key) in keys.iter().enumerate() {
            first_index.entry(key).or_insert(index);
        }

        let mut resolved: HashMap<CellKey, Arc<RunResult>> = HashMap::new();
        // Lowest-batch-index error wins, matching the plain executor.
        let mut first_error: Option<(usize, RunnerError)> = None;
        let record_error = |slot: &mut Option<(usize, RunnerError)>, index: usize, error: RunnerError| {
            if slot.as_ref().map(|(i, _)| index < *i).unwrap_or(true) {
                *slot = Some((index, error));
            }
        };

        // Claim phase: classify every unique key under one lock hold. Claims
        // are tracked by an unwind guard so a panicking simulation releases
        // them instead of wedging every waiter.
        let mut claims = ClaimGuard::new(self);
        let mut owned: Vec<(CellKey, usize)> = Vec::new();
        let mut foreign: Vec<CellKey> = Vec::new();
        {
            let mut cache = self.cache.lock().expect("cache lock");
            for (index, &key) in keys.iter().enumerate() {
                if first_index[&key] != index {
                    self.counters.batch_shared.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                match cache.get(&key) {
                    Some(Slot::Ready(result)) => {
                        self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                        resolved.insert(key, result.clone());
                    }
                    Some(Slot::Running) => {
                        self.counters.inflight_waits.fetch_add(1, Ordering::Relaxed);
                        foreign.push(key);
                    }
                    None => {
                        cache.insert(key, Slot::Running);
                        owned.push((key, index));
                    }
                }
            }
        }
        for &(key, _) in &owned {
            claims.track(key);
        }

        // Run phase: simulate every owned cell. Unlike `try_run`, failures do
        // not abort the batch — completed siblings are still cached, and the
        // failed keys are released for waiters.
        if !owned.is_empty() {
            let outcomes = self.executor.run(&owned, |_, &(_, index)| cells[index].run(runner));
            for (&(key, index), outcome) in owned.iter().zip(outcomes) {
                match outcome {
                    Ok(result) => {
                        self.counters.simulated.fetch_add(1, Ordering::Relaxed);
                        let result = Arc::new(result);
                        self.complete(key, result.clone());
                        resolved.insert(key, result);
                    }
                    Err(error) => {
                        self.counters.failed.fetch_add(1, Ordering::Relaxed);
                        self.release(key);
                        record_error(&mut first_error, index, error);
                    }
                }
                // Resolved either way (Ready, or released for re-claim): the
                // unwind guard must not touch a key another call may now own.
                claims.untrack(key);
            }
        }

        // Wait phase: block on foreign in-flight keys; re-claim and run any
        // the owner released after failing.
        let mut pending = foreign;
        while !pending.is_empty() {
            let mut reclaimed: Vec<CellKey> = Vec::new();
            {
                let mut cache = self.cache.lock().expect("cache lock");
                loop {
                    pending.retain(|&key| match cache.get(&key) {
                        Some(Slot::Ready(result)) => {
                            resolved.insert(key, result.clone());
                            false
                        }
                        Some(Slot::Running) => true,
                        None => {
                            cache.insert(key, Slot::Running);
                            reclaimed.push(key);
                            false
                        }
                    });
                    if pending.is_empty() || !reclaimed.is_empty() {
                        break;
                    }
                    cache = self.cv.wait(cache).expect("cache lock");
                }
            }
            for key in reclaimed {
                claims.track(key);
                let index = first_index[&key];
                match cells[index].run(runner) {
                    Ok(result) => {
                        self.counters.simulated.fetch_add(1, Ordering::Relaxed);
                        let result = Arc::new(result);
                        self.complete(key, result.clone());
                        resolved.insert(key, result);
                    }
                    Err(error) => {
                        self.counters.failed.fetch_add(1, Ordering::Relaxed);
                        self.release(key);
                        record_error(&mut first_error, index, error);
                    }
                }
                claims.untrack(key);
            }
        }

        if let Some((_, error)) = first_error {
            return Err(error);
        }
        Ok(keys
            .iter()
            .map(|key| resolved.get(key).expect("every non-failed key resolved").as_ref().clone())
            .collect())
    }
}
