//! The caching experiment service: a [`CellBackend`] that memoizes every
//! completed cell in a bounded content-addressed cache, deduplicates
//! in-flight work across concurrent requests, and fans novel cells out over
//! the existing [`ParallelExecutor`].
//!
//! Every cell resolves exactly one way:
//!
//! * **hit** — the key is `Ready` in the cache (memory, possibly loaded from
//!   disk at startup): the stored result is returned, no simulation runs.
//! * **owned miss** — this call claims the key (`Running`) and simulates it;
//!   the result is inserted, persisted, and waiters are woken.
//! * **in-flight** — another call owns the key: this call blocks on the
//!   condition variable instead of re-simulating. If the owner fails, the
//!   key is released and a waiter re-claims it (so an error in one request
//!   never wedges another).
//!
//! Determinism makes all of this sound: a cell's result is a pure function
//! of its key, so sharing a cached or in-flight result is bit-identical to
//! re-running it.
//!
//! ## Fault tolerance
//!
//! The service is built to degrade, never to lie:
//!
//! * **Bounded cache** — [`ServiceConfig::max_cached_cells`] caps the
//!   in-memory map with least-recently-touched eviction (hits refresh a
//!   slot's clock; in-flight `Running` claims are never evicted), and
//!   [`ServiceConfig::max_segments`] caps the segment directory by
//!   triggering a compaction pass (see [`crate::compact`]) that rewrites
//!   only the currently live keys.
//! * **Worker panics** — a panicking cell simulation is caught at the cell
//!   boundary, retried up to [`ServiceConfig::panic_retries`] times, and
//!   surfaces as a typed [`RunnerError::WorkerPanic`] if it keeps
//!   panicking. Sibling cells in the batch complete and cache normally.
//! * **Degraded mode** — [`DEGRADE_AFTER_PERSIST_FAILURES`] consecutive
//!   segment-append failures (disk full, I/O errors) flip the service into
//!   cache-read-only degraded mode: requests keep being served (memory
//!   cache + fresh simulation, both still bit-exact), nothing more is
//!   written to disk, and [`ServiceStats::degraded`] reports the state.

use crate::compact::CompactionReport;
use crate::faults::FaultPlan;
use crate::fleet::{Fleet, FleetDisposition};
use crate::key::{cell_key, CellKey};
use crate::store::ResultStore;
use comet_sim::experiments::{CellBackend, CellSpec, ParallelExecutor};
use comet_sim::{RunResult, Runner, RunnerError};
use comet_telemetry::{Counter, Gauge, Registry};
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Consecutive persist failures before the service stops writing to disk.
pub const DEGRADE_AFTER_PERSIST_FAILURES: u64 = 3;

/// Resource bounds and containment knobs for an [`ExperimentService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Completed cells kept in memory; least-recently-touched entries are
    /// evicted past this. `None` = unbounded (the pre-bounds behavior).
    pub max_cached_cells: Option<usize>,
    /// Segment files tolerated on disk before a compaction pass rewrites
    /// the live keys. `None` = never compact.
    pub max_segments: Option<usize>,
    /// Automatic re-runs of a cell whose simulation panicked before the
    /// panic surfaces as [`RunnerError::WorkerPanic`].
    pub panic_retries: u32,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { max_cached_cells: None, max_segments: None, panic_retries: 2 }
    }
}

/// One cache slot: a completed result (with its last-touched clock tick),
/// or a claim by an in-flight request.
#[derive(Debug, Clone)]
enum Slot {
    Ready { result: Arc<RunResult>, touched: u64 },
    Running,
}

/// The cache map plus the LRU clock, guarded by one mutex.
#[derive(Debug, Default)]
struct CacheState {
    slots: HashMap<CellKey, Slot>,
    clock: u64,
    ready: usize,
}

impl CacheState {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Inserts a completed result, maintaining the ready count.
    fn insert_ready(&mut self, key: CellKey, result: Arc<RunResult>) {
        let touched = self.tick();
        if !matches!(self.slots.insert(key, Slot::Ready { result, touched }), Some(Slot::Ready { .. })) {
            self.ready += 1;
        }
    }

    /// Evicts least-recently-touched `Ready` slots down to `max`; returns
    /// how many were evicted. `Running` claims are never evicted.
    fn evict_down_to(&mut self, max: usize) -> u64 {
        let mut evicted = 0;
        while self.ready > max {
            let victim = self
                .slots
                .iter()
                .filter_map(|(key, slot)| match slot {
                    Slot::Ready { touched, .. } => Some((*touched, *key)),
                    Slot::Running => None,
                })
                .min()
                .map(|(_, key)| key);
            match victim {
                Some(key) => {
                    self.slots.remove(&key);
                    self.ready -= 1;
                    evicted += 1;
                }
                None => break,
            }
        }
        evicted
    }
}

/// Registry-backed service counters. Each handle is an `Arc` straight to the
/// series' atomic, so every increment is still one relaxed atomic add — the
/// registry only matters at registration and scrape time. These are the
/// *only* copies of the service counters: `stats()` and the `/metrics`
/// scrape are projections of the same atomics and cannot drift.
struct Counters {
    cells_requested: Counter,
    cache_hits: Counter,
    batch_shared: Counter,
    inflight_waits: Counter,
    simulated: Counter,
    failed: Counter,
    loaded_from_disk: Counter,
    evictions: Counter,
    compactions: Counter,
    worker_retries: Counter,
    sheds: Counter,
    persist_errors: Counter,
    quarantined_segments: Counter,
    torn_lines: Counter,
    remote_cells: Counter,
    local_fallbacks: Counter,
    /// 1 when the service is in cache-read-only degraded mode.
    degraded: Gauge,
    /// Completed cells currently cached in memory (refreshed at scrape).
    cached_cells: Gauge,
}

impl Counters {
    fn new(registry: &Registry) -> Self {
        Counters {
            cells_requested: registry.counter(
                "service_cells_requested_total",
                "Cells requested across all run calls, duplicates included.",
            ),
            cache_hits: registry
                .counter("service_cache_hits_total", "Cells served from the completed-result cache."),
            batch_shared: registry.counter(
                "service_batch_shared_total",
                "Duplicate cells within one batch, served from the batch's own runs.",
            ),
            inflight_waits: registry.counter(
                "service_inflight_waits_total",
                "Cells that waited on another request's in-flight simulation.",
            ),
            simulated: registry.counter("service_simulated_total", "Cells actually simulated."),
            failed: registry.counter("service_failed_total", "Cell simulations that returned an error."),
            loaded_from_disk: registry.counter(
                "service_loaded_from_disk_total",
                "Cache entries loaded from disk segments at startup.",
            ),
            evictions: registry.counter(
                "service_evictions_total",
                "Completed cells evicted from the bounded in-memory cache.",
            ),
            compactions: registry.counter("service_compactions_total", "Segment-compaction passes run."),
            worker_retries: registry.counter(
                "service_worker_retries_total",
                "Automatic re-runs of cells whose simulation panicked.",
            ),
            sheds: registry.counter("service_sheds_total", "Requests shed by admission control."),
            persist_errors: registry
                .counter("service_persist_errors_total", "Failed segment appends and compactions."),
            quarantined_segments: registry.counter(
                "service_quarantined_segments_total",
                "Corrupt segments moved to quarantine during recovery.",
            ),
            torn_lines: registry.counter(
                "service_torn_lines_total",
                "Torn tail lines skipped during recovery (crash artifacts).",
            ),
            remote_cells: registry
                .counter("remote_cells_total", "Cells completed remotely by fleet workers."),
            local_fallbacks: registry
                .counter("service_local_fallbacks_total", "Cells the fleet handed back for local execution."),
            degraded: registry
                .gauge("service_degraded", "1 when the service is in cache-read-only degraded mode."),
            cached_cells: registry
                .gauge("service_cached_cells", "Completed cells currently cached in memory."),
        }
    }
}

/// A point-in-time snapshot of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ServiceStats {
    /// Cells requested across all `run_cells` calls (duplicates included).
    pub cells_requested: u64,
    /// Cells served from the completed-result cache.
    pub cache_hits: u64,
    /// Duplicate cells within a single batch, served from the batch's own runs.
    pub batch_shared: u64,
    /// Cells that waited on another request's in-flight simulation.
    pub inflight_waits: u64,
    /// Cells actually simulated.
    pub simulated: u64,
    /// Cell simulations that returned an error.
    pub failed: u64,
    /// Cache entries loaded from disk segments at startup.
    pub loaded_from_disk: u64,
    /// Completed cells evicted from the bounded in-memory cache.
    pub evictions: u64,
    /// Segment-compaction passes run.
    pub compactions: u64,
    /// Automatic re-runs of cells whose simulation panicked.
    pub worker_retries: u64,
    /// Requests shed by admission control (reported by the daemon).
    pub sheds: u64,
    /// Failed segment appends/compactions (each costs only persistence).
    pub persist_errors: u64,
    /// Corrupt segments moved to quarantine during recovery.
    pub quarantined_segments: u64,
    /// Torn tail lines skipped during recovery (crash artifacts).
    pub torn_lines: u64,
    /// Cells completed remotely by fleet workers.
    pub remote_cells: u64,
    /// Cells the fleet handed back for local execution (no workers, a
    /// remote failure, or an unclaimed cell) — the degraded-to-local path.
    pub local_fallbacks: u64,
    /// Fleet workers currently registered and live (a gauge, not a counter).
    pub workers_live: u64,
    /// Fleet leases that expired (missed heartbeats, dropped connections).
    pub leases_expired: u64,
    /// Cells re-dispatched to another worker after a lease expiry.
    pub redeliveries: u64,
    /// Duplicate completions dropped after lease expiry.
    pub stale_completions: u64,
    /// Whether the service is in cache-read-only degraded mode.
    pub degraded: bool,
}

impl ServiceStats {
    /// Fraction of requested cells served without a fresh simulation
    /// *attempt*. Failed cells count as fresh attempts (they ran and
    /// errored), so a batch full of failures reports a 0.0 rate rather than
    /// masquerading as cache hits.
    pub fn hit_rate(&self) -> f64 {
        if self.cells_requested == 0 {
            0.0
        } else {
            (1.0 - (self.simulated + self.failed) as f64 / self.cells_requested as f64).max(0.0)
        }
    }

    /// Counter-wise difference (`self - earlier`), for per-request deltas.
    /// `degraded` is a state, not a counter: the later snapshot's value is
    /// reported as-is.
    pub fn delta_since(&self, earlier: &ServiceStats) -> ServiceStats {
        ServiceStats {
            cells_requested: self.cells_requested - earlier.cells_requested,
            cache_hits: self.cache_hits - earlier.cache_hits,
            batch_shared: self.batch_shared - earlier.batch_shared,
            inflight_waits: self.inflight_waits - earlier.inflight_waits,
            simulated: self.simulated - earlier.simulated,
            failed: self.failed - earlier.failed,
            loaded_from_disk: self.loaded_from_disk - earlier.loaded_from_disk,
            evictions: self.evictions - earlier.evictions,
            compactions: self.compactions - earlier.compactions,
            worker_retries: self.worker_retries - earlier.worker_retries,
            sheds: self.sheds - earlier.sheds,
            persist_errors: self.persist_errors - earlier.persist_errors,
            quarantined_segments: self.quarantined_segments - earlier.quarantined_segments,
            torn_lines: self.torn_lines - earlier.torn_lines,
            remote_cells: self.remote_cells - earlier.remote_cells,
            local_fallbacks: self.local_fallbacks - earlier.local_fallbacks,
            // Like `degraded`, `workers_live` is a state, not a counter.
            workers_live: self.workers_live,
            leases_expired: self.leases_expired - earlier.leases_expired,
            redeliveries: self.redeliveries - earlier.redeliveries,
            stale_completions: self.stale_completions - earlier.stale_completions,
            degraded: self.degraded,
        }
    }
}

/// The long-running experiment service. Cheap to share (`Arc`) across
/// connection handlers and job workers; all interior state is synchronized.
pub struct ExperimentService {
    executor: ParallelExecutor,
    cache: Mutex<CacheState>,
    cv: Condvar,
    store: Option<Mutex<ResultStore>>,
    registry: Arc<Registry>,
    counters: Counters,
    config: ServiceConfig,
    faults: Option<Arc<FaultPlan>>,
    fleet: OnceLock<Arc<Fleet>>,
    degraded: AtomicBool,
    consecutive_persist_failures: AtomicU64,
}

impl std::fmt::Debug for ExperimentService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentService")
            .field("threads", &self.executor.threads())
            .field("cached_cells", &self.cached_cells())
            .field("persistent", &self.store.is_some())
            .field("degraded", &self.is_degraded())
            .finish()
    }
}

impl ExperimentService {
    /// An in-memory service (no persistence, default bounds) over `executor`.
    pub fn new(executor: ParallelExecutor) -> Self {
        Self::build(executor, None, ServiceConfig::default(), None)
            .expect("in-memory service construction is infallible")
    }

    /// A persistent service with default bounds: existing segments under
    /// `dir` are recovered into the in-memory cache (corrupt segments are
    /// quarantined, never fatal), and every newly completed cell is appended.
    pub fn with_cache_dir(executor: ParallelExecutor, dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::with_config(executor, Some(dir.into()), ServiceConfig::default())
    }

    /// A service with explicit bounds, optionally persistent.
    pub fn with_config(
        executor: ParallelExecutor,
        dir: Option<PathBuf>,
        config: ServiceConfig,
    ) -> std::io::Result<Self> {
        Self::build(executor, dir, config, None)
    }

    /// Test-only constructor: a service with a deterministic fault-injection
    /// plan threaded into its store-I/O and worker boundaries. Production
    /// callers use the other constructors; without a plan every fault hook
    /// is dead code.
    #[doc(hidden)]
    pub fn with_fault_plan(
        executor: ParallelExecutor,
        dir: Option<PathBuf>,
        config: ServiceConfig,
        faults: Arc<FaultPlan>,
    ) -> std::io::Result<Self> {
        Self::build(executor, dir, config, Some(faults))
    }

    fn build(
        executor: ParallelExecutor,
        dir: Option<PathBuf>,
        config: ServiceConfig,
        faults: Option<Arc<FaultPlan>>,
    ) -> std::io::Result<Self> {
        let registry = Arc::new(Registry::new());
        let counters = Counters::new(&registry);
        let service = ExperimentService {
            executor,
            cache: Mutex::new(CacheState::default()),
            cv: Condvar::new(),
            store: None,
            registry,
            counters,
            config,
            faults: faults.clone(),
            fleet: OnceLock::new(),
            degraded: AtomicBool::new(false),
            consecutive_persist_failures: AtomicU64::new(0),
        };
        let Some(dir) = dir else { return Ok(service) };

        let mut store = ResultStore::open_faulted(dir, faults)?;
        let recovery = store.recover()?;
        service.counters.quarantined_segments.store(recovery.quarantined as u64);
        service.counters.torn_lines.store(recovery.torn_lines as u64);
        let mut loaded = 0u64;
        {
            let mut cache = service.lock_cache();
            for (key, result) in recovery.entries {
                // Last write wins (a later segment may re-record a key, e.g.
                // two processes sharing the directory), and only unique keys
                // count as loaded cells.
                let fresh = !matches!(cache.slots.get(&key), Some(Slot::Ready { .. }));
                cache.insert_ready(key, Arc::new(result));
                if fresh {
                    loaded += 1;
                }
            }
            // The bound applies to reloaded state too: keep the most
            // recently written cells, evict the oldest.
            if let Some(max) = service.config.max_cached_cells {
                let evicted = cache.evict_down_to(max);
                service.counters.evictions.add(evicted);
            }
        }
        service.counters.loaded_from_disk.store(loaded);
        Ok(ExperimentService { store: Some(Mutex::new(store)), ..service })
    }

    /// Worker threads of the underlying executor.
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// The service's resource bounds.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Whether the service is in cache-read-only degraded mode (persistent
    /// disk errors; the in-memory cache and fresh simulation still serve
    /// every request bit-exactly, but nothing more is written to disk).
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Recovers the cache guard even if a panicking thread poisoned it:
    /// simulation panics happen outside the lock, so the map is consistent,
    /// and cascading the poison would wedge every connection.
    fn lock_cache(&self) -> MutexGuard<'_, CacheState> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Completed cells currently cached in memory.
    pub fn cached_cells(&self) -> usize {
        self.lock_cache().ready
    }

    /// Records one admission-control shed (called by the daemon so floods
    /// show up in `stats`).
    pub fn note_shed(&self) {
        self.counters.sheds.inc();
    }

    /// Attaches a fleet coordinator: cell simulations are offered to remote
    /// workers first and fall back to the local executor when the fleet
    /// declines (zero workers, remote failure, unclaimed cell). At most one
    /// fleet per service; later calls are ignored.
    pub fn attach_fleet(&self, fleet: Arc<Fleet>) {
        if self.fleet.set(fleet).is_ok() {
            // The coordinator mirrors its lease counters into this service's
            // registry so the scrape and `stats` read the same atomics.
            self.fleet.get().expect("just set").bind_metrics(self.registry.clone());
        }
    }

    /// The attached fleet coordinator, if any.
    pub fn fleet(&self) -> Option<&Arc<Fleet>> {
        self.fleet.get()
    }

    /// This service's metrics registry (engine metrics live in the process
    /// [`comet_telemetry::global`] registry, not here).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Renders the full Prometheus text exposition for this service: its own
    /// registry (service + fleet + per-worker families) followed by the
    /// process-global registry (engine + tracker families — the name
    /// prefixes are disjoint, so families never collide). Point-in-time
    /// gauges are refreshed first so a scrape is self-consistent.
    pub fn render_metrics(&self) -> String {
        self.counters.degraded.set(if self.is_degraded() { 1.0 } else { 0.0 });
        self.counters.cached_cells.set(self.cached_cells() as f64);
        if let Some(fleet) = self.fleet.get() {
            fleet.sync_metrics();
        }
        let mut out = self.registry.render();
        out.push_str(&comet_telemetry::global().render());
        out
    }

    /// A snapshot of the service counters (fleet supervision counters
    /// included when a coordinator is attached).
    pub fn stats(&self) -> ServiceStats {
        let fleet = self.fleet.get().map(|fleet| fleet.stats()).unwrap_or_default();
        ServiceStats {
            cells_requested: self.counters.cells_requested.get(),
            cache_hits: self.counters.cache_hits.get(),
            batch_shared: self.counters.batch_shared.get(),
            inflight_waits: self.counters.inflight_waits.get(),
            simulated: self.counters.simulated.get(),
            failed: self.counters.failed.get(),
            loaded_from_disk: self.counters.loaded_from_disk.get(),
            evictions: self.counters.evictions.get(),
            compactions: self.counters.compactions.get(),
            worker_retries: self.counters.worker_retries.get(),
            sheds: self.counters.sheds.get(),
            persist_errors: self.counters.persist_errors.get(),
            quarantined_segments: self.counters.quarantined_segments.get(),
            torn_lines: self.counters.torn_lines.get(),
            remote_cells: self.counters.remote_cells.get(),
            local_fallbacks: self.counters.local_fallbacks.get(),
            workers_live: fleet.workers_live,
            leases_expired: fleet.leases_expired,
            redeliveries: fleet.redeliveries,
            stale_completions: fleet.stale_completions,
            degraded: self.is_degraded(),
        }
    }

    /// Looks one cell up without running anything (refreshes its LRU clock).
    pub fn peek(&self, runner: &Runner, cell: &CellSpec) -> Option<Arc<RunResult>> {
        let key = cell_key(runner, cell);
        let mut cache = self.lock_cache();
        let tick = cache.tick();
        match cache.slots.get_mut(&key) {
            Some(Slot::Ready { result, touched }) => {
                *touched = tick;
                Some(result.clone())
            }
            _ => None,
        }
    }

    /// Runs one cell with panic containment: a panicking simulation is
    /// retried up to the configured bound, then surfaced as a typed
    /// [`RunnerError::WorkerPanic`] instead of unwinding through the batch.
    ///
    /// With a fleet attached, the cell is offered to remote workers first.
    /// A remote completion is authoritative (bit-exact by key construction);
    /// a declined cell falls through to the local path below; lease
    /// exhaustion and coordinator drain surface as typed errors.
    fn run_cell_contained(&self, runner: &Runner, cell: &CellSpec) -> Result<RunResult, RunnerError> {
        let _span = comet_telemetry::span("service.cell");
        if let Some(fleet) = self.fleet.get() {
            match fleet.run_cell(runner, cell) {
                FleetDisposition::Completed(result) => {
                    self.counters.remote_cells.inc();
                    return Ok(*result);
                }
                FleetDisposition::Exhausted { redeliveries } => {
                    return Err(RunnerError::LeaseExhausted { label: cell.label(), redeliveries });
                }
                FleetDisposition::Draining => {
                    return Err(RunnerError::Draining { label: cell.label() });
                }
                FleetDisposition::RunLocal(_) => {
                    self.counters.local_fallbacks.inc();
                }
            }
        }
        let attempts = self.config.panic_retries.saturating_add(1);
        for attempt in 1..=attempts {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if let Some(plan) = &self.faults {
                    plan.on_simulate(&cell.label());
                }
                cell.run(runner)
            }));
            match outcome {
                Ok(result) => return result,
                Err(_) if attempt < attempts => {
                    self.counters.worker_retries.inc();
                }
                Err(_) => {}
            }
        }
        Err(RunnerError::WorkerPanic { label: cell.label(), attempts })
    }

    /// Records `result` for `key`, evicts past the bound, wakes waiters,
    /// and persists. Persistence errors are contained — the cache stays
    /// correct in memory either way — and persistent disk failure flips the
    /// service into degraded mode instead of failing requests.
    fn complete(&self, key: CellKey, result: Arc<RunResult>) {
        {
            let mut cache = self.lock_cache();
            cache.insert_ready(key, result.clone());
            if let Some(max) = self.config.max_cached_cells {
                let evicted = cache.evict_down_to(max);
                self.counters.evictions.add(evicted);
            }
        }
        self.cv.notify_all();
        self.persist(key, &result);
    }

    fn persist(&self, key: CellKey, result: &RunResult) {
        if self.is_degraded() {
            return;
        }
        let Some(store) = &self.store else { return };
        let outcome = store.lock().unwrap_or_else(PoisonError::into_inner).append(key, result);
        match outcome {
            Ok(()) => {
                self.consecutive_persist_failures.store(0, Ordering::Relaxed);
                self.maybe_compact();
            }
            Err(error) => self.note_persist_failure("persist cell", &error.to_string()),
        }
    }

    fn note_persist_failure(&self, context: &str, message: &str) {
        self.counters.persist_errors.inc();
        let consecutive = self.consecutive_persist_failures.fetch_add(1, Ordering::Relaxed) + 1;
        eprintln!("comet-service: warning: could not {context}: {message}");
        if consecutive >= DEGRADE_AFTER_PERSIST_FAILURES && !self.degraded.swap(true, Ordering::Relaxed) {
            eprintln!(
                "comet-service: {consecutive} consecutive persist failures: entering \
                 cache-read-only degraded mode (results stay bit-exact in memory; \
                 nothing more is written to disk)"
            );
        }
    }

    /// Runs a compaction pass when the segment directory exceeds its bound.
    /// The live set is the in-memory `Ready` keys: everything superseded or
    /// evicted is dropped from disk.
    fn maybe_compact(&self) {
        let Some(max_segments) = self.config.max_segments else { return };
        let Some(store) = &self.store else { return };
        // Cheap check without touching the cache lock.
        {
            let store = store.lock().unwrap_or_else(PoisonError::into_inner);
            if store.segments_on_disk() <= max_segments {
                return;
            }
        }
        let live: HashSet<CellKey> = {
            let cache = self.lock_cache();
            cache
                .slots
                .iter()
                .filter_map(|(key, slot)| matches!(slot, Slot::Ready { .. }).then_some(*key))
                .collect()
        };
        let outcome = store.lock().unwrap_or_else(PoisonError::into_inner).compact(&live);
        match outcome {
            Ok(CompactionReport { kept, dropped, segments_before, segments_after }) => {
                self.counters.compactions.inc();
                eprintln!(
                    "comet-service: compacted {segments_before} segment(s) down to \
                     {segments_after} ({kept} live cell(s) kept, {dropped} record(s) dropped)"
                );
            }
            Err(error) => self.note_persist_failure("compact segments", &error.to_string()),
        }
    }
}

/// Unwind guard over the `Running` claims one `run_cells` call holds.
///
/// Cell panics are contained by `run_cell_contained`, but a panic anywhere
/// else in the batch path (or a `catch_unwind`-escaping foreign panic)
/// would leave this call's claims `Running` forever and block every waiter.
/// The guard releases whatever tracked keys are still `Running` on drop, so
/// waiters re-claim and re-run them; keys are untracked as they resolve,
/// making the normal-path drop a no-op.
struct ClaimGuard<'a> {
    service: &'a ExperimentService,
    keys: std::collections::HashSet<CellKey>,
}

impl<'a> ClaimGuard<'a> {
    fn new(service: &'a ExperimentService) -> Self {
        ClaimGuard { service, keys: std::collections::HashSet::new() }
    }

    fn track(&mut self, key: CellKey) {
        self.keys.insert(key);
    }

    fn untrack(&mut self, key: CellKey) {
        self.keys.remove(&key);
    }
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if self.keys.is_empty() {
            return;
        }
        let mut cache = self.service.lock_cache();
        for key in &self.keys {
            if matches!(cache.slots.get(key), Some(Slot::Running)) {
                cache.slots.remove(key);
            }
        }
        drop(cache);
        self.service.cv.notify_all();
    }
}

impl ExperimentService {
    /// Releases a failed claim and wakes waiters so one of them can re-claim.
    fn release(&self, key: CellKey) {
        self.lock_cache().slots.remove(&key);
        self.cv.notify_all();
    }
}

impl CellBackend for ExperimentService {
    fn run_cells(&self, runner: &Runner, cells: &[CellSpec]) -> Result<Vec<RunResult>, RunnerError> {
        let _span = comet_telemetry::span("service.batch");
        self.counters.cells_requested.add(cells.len() as u64);
        let keys: Vec<CellKey> = cells.iter().map(|cell| cell_key(runner, cell)).collect();
        // First batch position of each unique key (for re-running reclaimed
        // foreign cells and for error attribution).
        let mut first_index: HashMap<CellKey, usize> = HashMap::with_capacity(keys.len());
        for (index, &key) in keys.iter().enumerate() {
            first_index.entry(key).or_insert(index);
        }

        let mut resolved: HashMap<CellKey, Arc<RunResult>> = HashMap::new();
        // Lowest-batch-index error wins, matching the plain executor.
        let mut first_error: Option<(usize, RunnerError)> = None;
        let record_error = |slot: &mut Option<(usize, RunnerError)>, index: usize, error: RunnerError| {
            if slot.as_ref().map(|(i, _)| index < *i).unwrap_or(true) {
                *slot = Some((index, error));
            }
        };

        // Claim phase: classify every unique key under one lock hold. Claims
        // are tracked by an unwind guard so a panic escaping the containment
        // boundary still releases them instead of wedging every waiter.
        let mut claims = ClaimGuard::new(self);
        let mut owned: Vec<(CellKey, usize)> = Vec::new();
        let mut foreign: Vec<CellKey> = Vec::new();
        {
            let mut cache = self.lock_cache();
            for (index, &key) in keys.iter().enumerate() {
                if first_index[&key] != index {
                    self.counters.batch_shared.inc();
                    continue;
                }
                let tick = cache.tick();
                match cache.slots.get_mut(&key) {
                    Some(Slot::Ready { result, touched }) => {
                        self.counters.cache_hits.inc();
                        *touched = tick;
                        resolved.insert(key, result.clone());
                    }
                    Some(Slot::Running) => {
                        self.counters.inflight_waits.inc();
                        foreign.push(key);
                    }
                    None => {
                        cache.slots.insert(key, Slot::Running);
                        owned.push((key, index));
                    }
                }
            }
        }
        for &(key, _) in &owned {
            claims.track(key);
        }

        // Run phase: simulate every owned cell. Unlike `try_run`, failures do
        // not abort the batch — completed siblings are still cached, and the
        // failed keys are released for waiters.
        if !owned.is_empty() {
            let outcomes =
                self.executor.run(&owned, |_, &(_, index)| self.run_cell_contained(runner, &cells[index]));
            for (&(key, index), outcome) in owned.iter().zip(outcomes) {
                match outcome {
                    Ok(result) => {
                        self.counters.simulated.inc();
                        let result = Arc::new(result);
                        self.complete(key, result.clone());
                        resolved.insert(key, result);
                    }
                    Err(error) => {
                        self.counters.failed.inc();
                        self.release(key);
                        record_error(&mut first_error, index, error);
                    }
                }
                // Resolved either way (Ready, or released for re-claim): the
                // unwind guard must not touch a key another call may now own.
                claims.untrack(key);
            }
        }

        // Wait phase: block on foreign in-flight keys; re-claim and run any
        // the owner released after failing.
        let mut pending = foreign;
        while !pending.is_empty() {
            let mut reclaimed: Vec<CellKey> = Vec::new();
            {
                let mut cache = self.lock_cache();
                loop {
                    let tick = cache.tick();
                    let mut changed: Vec<(CellKey, Option<Arc<RunResult>>)> = Vec::new();
                    pending.retain(|&key| match cache.slots.get_mut(&key) {
                        Some(Slot::Ready { result, touched }) => {
                            *touched = tick;
                            changed.push((key, Some(result.clone())));
                            false
                        }
                        Some(Slot::Running) => true,
                        None => {
                            changed.push((key, None));
                            false
                        }
                    });
                    for (key, ready) in changed {
                        match ready {
                            Some(result) => {
                                resolved.insert(key, result);
                            }
                            None => {
                                cache.slots.insert(key, Slot::Running);
                                reclaimed.push(key);
                            }
                        }
                    }
                    if pending.is_empty() || !reclaimed.is_empty() {
                        break;
                    }
                    cache = self.cv.wait(cache).unwrap_or_else(PoisonError::into_inner);
                }
            }
            for key in reclaimed {
                claims.track(key);
                let index = first_index[&key];
                match self.run_cell_contained(runner, &cells[index]) {
                    Ok(result) => {
                        self.counters.simulated.inc();
                        let result = Arc::new(result);
                        self.complete(key, result.clone());
                        resolved.insert(key, result);
                    }
                    Err(error) => {
                        self.counters.failed.inc();
                        self.release(key);
                        record_error(&mut first_error, index, error);
                    }
                }
                claims.untrack(key);
            }
        }

        if let Some((_, error)) = first_error {
            return Err(error);
        }
        Ok(keys
            .iter()
            .map(|key| resolved.get(key).expect("every non-failed key resolved").as_ref().clone())
            .collect())
    }
}
