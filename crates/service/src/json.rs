//! Minimal JSON parser producing the offline `serde` crate's [`Value`] tree.
//!
//! The offline `serde_json` stand-in only *serializes*; the service needs to
//! read JSON back in two places — the on-disk result segments and the wire
//! protocol — so this module implements the inverse: a strict recursive
//! descent parser over the exact JSON subset the workspace emits (finite
//! numbers, `\uXXXX`-escaped strings, arrays, string-keyed objects).

use serde::Value;

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the parser failed at.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut pos = 0;
    let value = parse_value(text, &mut pos)?;
    skip_ws(text.as_bytes(), &mut pos);
    if pos != text.len() {
        return Err(err(pos, "trailing characters after JSON document"));
    }
    Ok(value)
}

fn err(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError { offset, message: message.into() }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected '{}'", byte as char)))
    }
}

fn parse_value(text: &str, pos: &mut usize) -> Result<Value, JsonError> {
    let bytes = text.as_bytes();
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(text, pos),
        Some(b'[') => parse_array(text, pos),
        Some(b'"') => Ok(Value::Str(parse_string(text, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected '{word}'")))
    }
}

fn parse_object(text: &str, pos: &mut usize) -> Result<Value, JsonError> {
    let bytes = text.as_bytes();
    expect(bytes, pos, b'{')?;
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Map(entries));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(text, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(text, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn parse_array(text: &str, pos: &mut usize) -> Result<Value, JsonError> {
    let bytes = text.as_bytes();
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Seq(items));
    }
    loop {
        items.push(parse_value(text, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_string(text: &str, pos: &mut usize) -> Result<String, JsonError> {
    let bytes = text.as_bytes();
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex =
                            bytes.get(*pos + 1..*pos + 5).ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| err(*pos, "bad \\u escape"))?;
                        // The workspace never emits surrogate pairs (it only
                        // escapes control characters); reject them rather than
                        // silently mis-decoding.
                        let c = char::from_u32(code).ok_or_else(|| err(*pos, "invalid \\u code point"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "unknown escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // `pos` always sits on a char boundary: structural JSON bytes
                // are ASCII, and this arm advances by whole scalars.
                let c = text[*pos..].chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number");
    if text.is_empty() || text == "-" {
        return Err(err(start, "invalid number"));
    }
    if is_float {
        text.parse::<f64>().map(Value::Float).map_err(|_| err(start, "invalid float"))
    } else if text.starts_with('-') {
        text.parse::<i64>().map(Value::Int).map_err(|_| err(start, "integer out of range"))
    } else {
        text.parse::<u64>().map(Value::UInt).map_err(|_| err(start, "integer out of range"))
    }
}

/// Looks `key` up in an object [`Value`].
pub fn get<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
    match value {
        Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// The string content of a [`Value::Str`].
pub fn as_str(value: &Value) -> Option<&str> {
    match value {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

/// Numeric coercion to `u64` (accepts `UInt` and non-negative `Int`).
pub fn as_u64(value: &Value) -> Option<u64> {
    match value {
        Value::UInt(n) => Some(*n),
        Value::Int(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

/// Numeric coercion to `i64`.
pub fn as_i64(value: &Value) -> Option<i64> {
    match value {
        Value::Int(n) => Some(*n),
        Value::UInt(n) => i64::try_from(*n).ok(),
        _ => None,
    }
}

/// Numeric coercion to `f64` (accepts every numeric variant).
pub fn as_f64(value: &Value) -> Option<f64> {
    match value {
        Value::Float(x) => Some(*x),
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        _ => None,
    }
}

/// The items of a [`Value::Seq`].
pub fn as_seq(value: &Value) -> Option<&[Value]> {
    match value {
        Value::Seq(items) => Some(items),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_what_the_workspace_serializer_emits() {
        let original = Value::Map(vec![
            ("label".to_string(), Value::Str("a\"b\\c\nd".to_string())),
            ("count".to_string(), Value::UInt(42)),
            ("delta".to_string(), Value::Int(-7)),
            ("ratio".to_string(), Value::Float(2.5)),
            ("whole".to_string(), Value::Float(3.0)),
            ("flag".to_string(), Value::Bool(true)),
            ("nothing".to_string(), Value::Null),
            ("items".to_string(), Value::Seq(vec![Value::UInt(1), Value::Str("x".to_string())])),
            ("empty_map".to_string(), Value::Map(vec![])),
            ("empty_seq".to_string(), Value::Seq(vec![])),
        ]);
        struct W(Value);
        impl serde::Serialize for W {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        for text in [
            serde_json::to_string(&W(original.clone())).unwrap(),
            serde_json::to_string_pretty(&W(original.clone())).unwrap(),
        ] {
            assert_eq!(parse(&text).unwrap(), original, "{text}");
        }
    }

    #[test]
    fn parses_unicode_escapes_and_raw_utf8() {
        assert_eq!(parse(r#""Aé""#).unwrap(), Value::Str("Aé".to_string()));
        assert_eq!(parse("\"héllo\"").unwrap(), Value::Str("héllo".to_string()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"unterminated", "{} extra"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = parse(r#"{"op":"run","id":3,"priority":-2,"x":1.5,"targets":["fig9"]}"#).unwrap();
        assert_eq!(as_str(get(&doc, "op").unwrap()), Some("run"));
        assert_eq!(as_u64(get(&doc, "id").unwrap()), Some(3));
        assert_eq!(as_i64(get(&doc, "priority").unwrap()), Some(-2));
        assert_eq!(as_f64(get(&doc, "x").unwrap()), Some(1.5));
        assert_eq!(as_seq(get(&doc, "targets").unwrap()).unwrap().len(), 1);
        assert!(get(&doc, "missing").is_none());
    }
}
