//! Deterministic fault injection for the experiment service.
//!
//! A [`FaultPlan`] is a scripted seam threaded (via
//! [`ExperimentService::with_fault_plan`](crate::ExperimentService::with_fault_plan),
//! a test-only constructor) into the two failure-prone boundaries of the
//! service:
//!
//! * **store I/O** — [`FaultPlan::on_append`] is consulted before every
//!   segment append and can tear the write mid-line (crash simulation),
//!   fail it outright (ENOSPC simulation), or clamp it behind a delay
//!   (slow-disk simulation);
//! * **workers** — [`FaultPlan::on_simulate`] runs at the top of every cell
//!   simulation attempt and can panic on schedule (worker-crash simulation)
//!   or hold all workers at a gate until the test releases them (the
//!   deterministic way to fill the job queue for admission-control tests);
//! * **the fleet** — [`FaultPlan::on_deliver`] runs before a remote worker
//!   reports a completed cell and can drop the connection outright or
//!   truncate the result line mid-write (network-partition simulation);
//!   [`FaultPlan::heartbeats_muted`] silences a worker's heartbeat loop
//!   (missed-heartbeat → lease-expiry simulation); and
//!   [`FaultPlan::on_worker_cell`] can kill a worker mid-cell on schedule
//!   (crash-under-lease simulation, the failover-to-another-worker path).
//!
//! Everything is driven by counters and labels, never clocks, so every
//! fault fires at exactly the same point on every run. Production builds
//! construct the service without a plan; every hook is then never called.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// What the store should do with one append.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppendFault {
    /// Write the line normally.
    Proceed,
    /// Write only the first `keep_bytes` bytes of the line (no trailing
    /// newline), then fail — a crash mid-`write(2)`.
    Torn {
        /// Bytes of the encoded line that reach the disk.
        keep_bytes: usize,
    },
    /// Fail before writing anything, as a full disk would.
    Enospc,
}

/// What a fleet worker should do with one result delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeliverFault {
    /// Send the result normally.
    Proceed,
    /// Drop the connection without sending anything — the coordinator sees
    /// a clean disconnect with the lease still open.
    Drop,
    /// Write only the first `keep_bytes` bytes of the result line (no
    /// newline), then drop the connection — a half-delivered result the
    /// coordinator's framing must refuse to act on.
    Truncate {
        /// Bytes of the encoded result line that reach the wire.
        keep_bytes: usize,
    },
}

#[derive(Default)]
struct PlanState {
    appends_seen: u64,
    torn_appends: HashMap<u64, usize>,
    enospc_from: Option<u64>,
    append_delay: Option<Duration>,
    panics: HashMap<String, u32>,
    hold_workers: bool,
    workers_held: usize,
    simulations_seen: u64,
    deliveries_seen: u64,
    deliver_faults: HashMap<u64, DeliverFault>,
    heartbeats_muted: bool,
    cell_deaths: HashMap<String, u32>,
}

/// A deterministic, scripted fault plan. Cheap to share (`Arc`) between the
/// service, its store, and the test that scripted it.
#[derive(Default)]
pub struct FaultPlan {
    state: Mutex<PlanState>,
    gate: Condvar,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan").finish_non_exhaustive()
    }
}

impl FaultPlan {
    /// An empty plan: every hook is a no-op until faults are scripted.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PlanState> {
        // A panicking hook user must not wedge the plan itself.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Scripts the `nth` store append (0-based, counted across the plan's
    /// lifetime) to tear: only `keep_bytes` bytes of the encoded line are
    /// written before the append fails, simulating a crash mid-write.
    pub fn tear_append(self, nth: u64, keep_bytes: usize) -> Self {
        self.lock().torn_appends.insert(nth, keep_bytes);
        self
    }

    /// Scripts every store append from the `nth` on (0-based) to fail as if
    /// the disk were full, without writing anything.
    pub fn enospc_from(self, nth: u64) -> Self {
        self.lock().enospc_from = Some(nth);
        self
    }

    /// Clamps every store append behind `delay` (slow-disk simulation).
    pub fn delay_appends(self, delay: Duration) -> Self {
        self.lock().append_delay = Some(delay);
        self
    }

    /// Scripts the first `times` simulation attempts of the cell labelled
    /// `label` to panic. Pass [`u32::MAX`] for "always panics" (the
    /// retries-exhausted path).
    pub fn panic_on(self, label: impl Into<String>, times: u32) -> Self {
        self.lock().panics.insert(label.into(), times);
        self
    }

    /// Closes the worker gate: every subsequent simulation attempt blocks in
    /// [`on_simulate`](Self::on_simulate) until [`release_workers`]
    /// (Self::release_workers) opens it. This is how admission-control tests
    /// deterministically keep the job queue occupied.
    pub fn hold_workers(&self) {
        self.lock().hold_workers = true;
    }

    /// Opens the worker gate and wakes every held worker.
    pub fn release_workers(&self) {
        self.lock().hold_workers = false;
        self.gate.notify_all();
    }

    /// Workers currently blocked at the gate (for tests to synchronize on).
    pub fn workers_held(&self) -> usize {
        self.lock().workers_held
    }

    /// Store appends observed so far.
    pub fn appends_seen(&self) -> u64 {
        self.lock().appends_seen
    }

    /// Simulation attempts observed so far.
    pub fn simulations_seen(&self) -> u64 {
        self.lock().simulations_seen
    }

    /// Scripts the `nth` fleet result delivery (0-based, counted across the
    /// plan's lifetime) to misbehave: drop the connection before sending, or
    /// truncate the result line mid-write.
    pub fn fail_delivery(self, nth: u64, fault: DeliverFault) -> Self {
        self.lock().deliver_faults.insert(nth, fault);
        self
    }

    /// Silences worker heartbeat loops: heartbeats stop flowing, the
    /// coordinator's supervision sees a silent worker, and leases expire.
    pub fn mute_heartbeats(&self) {
        self.lock().heartbeats_muted = true;
    }

    /// Lets heartbeats flow again.
    pub fn unmute_heartbeats(&self) {
        self.lock().heartbeats_muted = false;
    }

    /// Whether worker heartbeat loops are currently silenced.
    pub fn heartbeats_muted(&self) -> bool {
        self.lock().heartbeats_muted
    }

    /// Scripts the first `times` remote executions of the cell labelled
    /// `label` to kill the worker mid-cell (the worker's run loop exits with
    /// the lease still open). Pass [`u32::MAX`] for "always dies" — the
    /// redelivery-exhaustion path.
    pub fn die_on_cell(self, label: impl Into<String>, times: u32) -> Self {
        self.lock().cell_deaths.insert(label.into(), times);
        self
    }

    /// Fleet result-delivery hook: consumes one delivery slot and returns
    /// the scripted fault.
    pub fn on_deliver(&self) -> DeliverFault {
        let mut state = self.lock();
        let nth = state.deliveries_seen;
        state.deliveries_seen += 1;
        state.deliver_faults.get(&nth).cloned().unwrap_or(DeliverFault::Proceed)
    }

    /// Result deliveries observed so far.
    pub fn deliveries_seen(&self) -> u64 {
        self.lock().deliveries_seen
    }

    /// Fleet worker hook, called before a worker simulates a leased cell:
    /// `true` means the worker must die now (exit its run loop with the
    /// lease open), exercising lease expiry and failover.
    pub fn on_worker_cell(&self, label: &str) -> bool {
        let mut state = self.lock();
        if let Some(remaining) = state.cell_deaths.get_mut(label) {
            if *remaining > 0 {
                if *remaining != u32::MAX {
                    *remaining -= 1;
                }
                return true;
            }
        }
        false
    }

    /// Store hook: consumes one append slot and returns the scripted fault
    /// (with any scripted delay already applied).
    pub fn on_append(&self) -> AppendFault {
        let (fault, delay) = {
            let mut state = self.lock();
            let nth = state.appends_seen;
            state.appends_seen += 1;
            let fault = if let Some(&keep_bytes) = state.torn_appends.get(&nth) {
                AppendFault::Torn { keep_bytes }
            } else if state.enospc_from.is_some_and(|from| nth >= from) {
                AppendFault::Enospc
            } else {
                AppendFault::Proceed
            };
            (fault, state.append_delay)
        };
        if let Some(delay) = delay {
            std::thread::sleep(delay);
        }
        fault
    }

    /// Worker hook: blocks while the gate is held, then panics if this
    /// cell's label still has scripted panics left. Called inside the
    /// service's `catch_unwind` boundary, so an injected panic exercises
    /// exactly the containment path a real worker crash would.
    pub fn on_simulate(&self, label: &str) {
        let mut state = self.lock();
        state.simulations_seen += 1;
        while state.hold_workers {
            state.workers_held += 1;
            state = self.gate.wait(state).unwrap_or_else(PoisonError::into_inner);
            state.workers_held -= 1;
        }
        if let Some(remaining) = state.panics.get_mut(label) {
            if *remaining > 0 {
                if *remaining != u32::MAX {
                    *remaining -= 1;
                }
                drop(state);
                panic!("injected worker panic: {label}");
            }
        }
    }

    /// The injected ENOSPC error the store surfaces.
    pub(crate) fn enospc_error() -> std::io::Error {
        std::io::Error::new(
            std::io::ErrorKind::StorageFull,
            "injected fault: no space left on device (ENOSPC)",
        )
    }

    /// The injected torn-write error the store surfaces.
    pub(crate) fn torn_error() -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::WriteZero, "injected fault: torn write (crash mid-append)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_script_fires_on_exact_counters() {
        let plan = FaultPlan::new().tear_append(1, 10).enospc_from(3);
        assert_eq!(plan.on_append(), AppendFault::Proceed);
        assert_eq!(plan.on_append(), AppendFault::Torn { keep_bytes: 10 });
        assert_eq!(plan.on_append(), AppendFault::Proceed);
        assert_eq!(plan.on_append(), AppendFault::Enospc);
        assert_eq!(plan.on_append(), AppendFault::Enospc, "ENOSPC persists once it starts");
        assert_eq!(plan.appends_seen(), 5);
    }

    #[test]
    fn scripted_panics_are_bounded_per_label() {
        let plan = FaultPlan::new().panic_on("cell-a", 2);
        for _ in 0..2 {
            let caught =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.on_simulate("cell-a")));
            assert!(caught.is_err(), "scripted attempts panic");
        }
        plan.on_simulate("cell-a"); // third attempt succeeds
        plan.on_simulate("cell-b"); // other labels are never touched
        assert_eq!(plan.simulations_seen(), 4);
    }

    #[test]
    fn fleet_faults_fire_on_exact_counters() {
        let plan = FaultPlan::new()
            .fail_delivery(0, DeliverFault::Drop)
            .fail_delivery(2, DeliverFault::Truncate { keep_bytes: 7 })
            .die_on_cell("victim", 1);
        assert_eq!(plan.on_deliver(), DeliverFault::Drop);
        assert_eq!(plan.on_deliver(), DeliverFault::Proceed);
        assert_eq!(plan.on_deliver(), DeliverFault::Truncate { keep_bytes: 7 });
        assert_eq!(plan.deliveries_seen(), 3);

        assert!(plan.on_worker_cell("victim"), "first attempt dies");
        assert!(!plan.on_worker_cell("victim"), "budget spent");
        assert!(!plan.on_worker_cell("bystander"));

        assert!(!plan.heartbeats_muted());
        plan.mute_heartbeats();
        assert!(plan.heartbeats_muted());
        plan.unmute_heartbeats();
        assert!(!plan.heartbeats_muted());
    }

    #[test]
    fn worker_gate_holds_and_releases() {
        use std::sync::Arc;
        let plan = Arc::new(FaultPlan::new());
        plan.hold_workers();
        let worker = {
            let plan = plan.clone();
            std::thread::spawn(move || plan.on_simulate("gated"))
        };
        // Wait for the worker to reach the gate, then release it.
        while plan.workers_held() == 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        plan.release_workers();
        worker.join().unwrap();
        assert_eq!(plan.workers_held(), 0);
    }
}
