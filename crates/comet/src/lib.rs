//! # comet
//!
//! Umbrella crate of the CoMeT reproduction: re-exports the public API of every
//! sub-crate so applications can depend on a single crate.
//!
//! * [`core`] — the CoMeT mechanism itself (Count-Min Sketch, Counter Table,
//!   Recent Aggressor Table, early preventive refresh).
//! * [`dram`] — the DDR4-style DRAM substrate (geometry, timing, energy).
//! * [`mitigations`] — the baseline mechanisms (Graphene, Hydra, PARA, REGA,
//!   BlockHammer) and the `RowHammerMitigation` trait.
//! * [`trace`] — the Table 3 workload catalog, synthetic trace generators, and
//!   attack traces.
//! * [`sim`] — the memory controller, CPU model, and experiment harness.
//! * [`area`] — the analytic storage/area models behind Tables 1 and 4.
//!
//! ## Quickstart
//!
//! ```rust
//! use comet::sim::{MechanismKind, Runner, SimConfig};
//!
//! let runner = Runner::new(SimConfig::quick_test());
//! let baseline = runner.run_single_core("429.mcf", MechanismKind::Baseline, 1000).unwrap();
//! let protected = runner.run_single_core("429.mcf", MechanismKind::Comet, 1000).unwrap();
//! let slowdown = 1.0 - protected.normalized_ipc(&baseline);
//! assert!(slowdown < 0.10, "CoMeT should cost almost nothing at NRH = 1000");
//! ```

pub use comet_area as area;
pub use comet_core as core;
pub use comet_dram as dram;
pub use comet_mitigations as mitigations;
pub use comet_sim as sim;
pub use comet_trace as trace;

/// Version of the reproduction (mirrors the workspace version).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exposed() {
        assert!(!super::VERSION.is_empty());
    }
}
