//! The 61-workload catalog of Table 3.
//!
//! Each entry carries the workload name and average memory bandwidth reported
//! in Table 3 of the paper, plus synthetic-trace parameters (RBMPKI, row
//! locality, footprint) derived deterministically from the bandwidth and the
//! intensity class the paper assigns the workload to. The absolute parameter
//! values are approximations — the original SimPoint traces are not available —
//! but each workload lands in its published RBMPKI class and the relative
//! ordering by memory intensity is preserved, which is what drives every trend
//! in the paper's evaluation.

use crate::profile::{MemoryIntensity, WorkloadProfile};

/// `(name, bandwidth MB/s)` for every workload of an intensity class in Table 3.
const HIGH: &[(&str, f64)] = &[
    ("519.lbm", 5049.0),
    ("459.GemsFDTD", 4788.0),
    ("450.soplex", 3212.0),
    ("h264_decode", 11284.0),
    ("520.omnetpp", 2567.0),
    ("433.milc", 3595.0),
    ("434.zeusmp", 5115.0),
    ("bfs_dblp", 12135.0),
    ("429.mcf", 5588.0),
    ("549.fotonik3d", 4428.0),
    ("470.lbm", 6489.0),
    ("bfs_ny", 12146.0),
    ("bfs_cm2003", 12138.0),
    ("437.leslie3d", 3806.0),
];

const MEDIUM: &[(&str, f64)] = &[
    ("510.parest", 92.0),
    ("462.libquantum", 6089.0),
    ("tpch2", 3612.0),
    ("wc_8443", 1772.0),
    ("ycsb_aserver", 1080.0),
    ("473.astar", 2473.0),
    ("jp2_decode", 1390.0),
    ("436.cactusADM", 1915.0),
    ("557.xz", 1113.0),
    ("ycsb_cserver", 842.0),
    ("ycsb_eserver", 721.0),
    ("471.omnetpp", 96.0),
    ("483.xalancbmk", 187.0),
    ("505.mcf", 3760.0),
    ("wc_map0", 1768.0),
    ("jp2_encode", 1706.0),
    ("tpch17", 2553.0),
    ("ycsb_bserver", 854.0),
    ("tpcc64", 1472.0),
    ("482.sphinx3", 968.0),
];

const LOW: &[(&str, f64)] = &[
    ("502.gcc", 180.0),
    ("544.nab", 78.0),
    ("h264_encode", 0.10),
    ("507.cactuBSSN", 1325.0),
    ("525.x264", 109.0),
    ("ycsb_dserver", 659.0),
    ("531.deepsjeng", 105.0),
    ("526.blender", 56.0),
    ("435.gromacs", 259.0),
    ("523.xalancbmk", 180.0),
    ("447.dealII", 24.0),
    ("508.namd", 104.0),
    ("538.imagick", 8.0),
    ("445.gobmk", 97.0),
    ("444.namd", 104.0),
    ("464.h264ref", 17.0),
    ("ycsb_abgsave", 362.0),
    ("458.sjeng", 131.0),
    ("541.leela", 4.0),
    ("tpch6", 675.0),
    ("511.povray", 1.0),
    ("456.hmmer", 28.0),
    ("481.wrf", 7.0),
    ("grep_map0", 381.0),
    ("500.perlbench", 642.0),
    ("403.gcc", 79.0),
    ("401.bzip2", 59.0),
];

/// Deterministic per-name pseudo-random fraction in `[0, 1)`, used to vary
/// profile parameters within a class without any global RNG state.
fn name_fraction(name: &str) -> f64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn build_profile(name: &str, bandwidth: f64, class: MemoryIntensity) -> WorkloadProfile {
    let jitter = name_fraction(name);
    let (rbmpki, row_locality, footprint, streams) = match class {
        MemoryIntensity::High => {
            let rbmpki = (bandwidth / 450.0).clamp(10.0, 45.0);
            (rbmpki, 0.45 + 0.25 * jitter, 4096 + (jitter * 4096.0) as usize, 8)
        }
        MemoryIntensity::Medium => {
            let rbmpki = (bandwidth / 450.0).clamp(2.0, 9.8);
            (rbmpki, 0.40 + 0.30 * jitter, 1024 + (jitter * 2048.0) as usize, 4)
        }
        MemoryIntensity::Low => {
            let rbmpki = (bandwidth / 450.0).clamp(0.01, 1.9);
            (rbmpki, 0.50 + 0.30 * jitter, 128 + (jitter * 512.0) as usize, 2)
        }
    };
    WorkloadProfile {
        name: name.to_string(),
        rbmpki,
        bandwidth_mbps: bandwidth,
        row_locality,
        footprint_rows_per_bank: footprint,
        write_fraction: 0.15 + 0.2 * jitter,
        streams,
    }
}

/// All 61 single-core workloads of Table 3, high-intensity first.
pub fn all_workloads() -> Vec<WorkloadProfile> {
    let mut v = Vec::with_capacity(61);
    for &(name, bw) in HIGH {
        v.push(build_profile(name, bw, MemoryIntensity::High));
    }
    for &(name, bw) in MEDIUM {
        v.push(build_profile(name, bw, MemoryIntensity::Medium));
    }
    for &(name, bw) in LOW {
        v.push(build_profile(name, bw, MemoryIntensity::Low));
    }
    v
}

/// Looks up one workload of Table 3 by name.
pub fn workload(name: &str) -> Option<WorkloadProfile> {
    let class = if HIGH.iter().any(|&(n, _)| n == name) {
        Some(MemoryIntensity::High)
    } else if MEDIUM.iter().any(|&(n, _)| n == name) {
        Some(MemoryIntensity::Medium)
    } else if LOW.iter().any(|&(n, _)| n == name) {
        Some(MemoryIntensity::Low)
    } else {
        None
    }?;
    let bandwidth =
        HIGH.iter().chain(MEDIUM.iter()).chain(LOW.iter()).find(|&&(n, _)| n == name).map(|&(_, bw)| bw)?;
    Some(build_profile(name, bandwidth, class))
}

/// The workloads of one intensity class.
pub fn workloads_in_class(class: MemoryIntensity) -> Vec<WorkloadProfile> {
    all_workloads().into_iter().filter(|w| w.intensity() == class).collect()
}

/// A stratified subset of the catalog used by the quick experiment presets:
/// every high-intensity workload, every other medium one, and a handful of
/// low-intensity ones (their overheads are near zero for every mechanism).
pub fn representative_subset() -> Vec<WorkloadProfile> {
    let mut subset = Vec::new();
    subset.extend(workloads_in_class(MemoryIntensity::High));
    subset.extend(workloads_in_class(MemoryIntensity::Medium).into_iter().step_by(2));
    subset.extend(workloads_in_class(MemoryIntensity::Low).into_iter().step_by(5));
    subset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_61_workloads() {
        assert_eq!(all_workloads().len(), 61);
    }

    #[test]
    fn class_sizes_match_table3() {
        assert_eq!(workloads_in_class(MemoryIntensity::High).len(), 14);
        assert_eq!(workloads_in_class(MemoryIntensity::Medium).len(), 20);
        assert_eq!(workloads_in_class(MemoryIntensity::Low).len(), 27);
    }

    #[test]
    fn every_profile_is_valid_and_in_class() {
        for w in all_workloads() {
            assert!(w.validate().is_empty(), "{}: {:?}", w.name, w.validate());
            let class = w.intensity();
            match class {
                MemoryIntensity::High => assert!(w.rbmpki >= 10.0),
                MemoryIntensity::Medium => assert!((2.0..10.0).contains(&w.rbmpki)),
                MemoryIntensity::Low => assert!(w.rbmpki < 2.0),
            }
        }
    }

    #[test]
    fn lookup_by_name_matches_catalog() {
        let from_lookup = workload("519.lbm").unwrap();
        let from_catalog = all_workloads().into_iter().find(|w| w.name == "519.lbm").unwrap();
        assert_eq!(from_lookup, from_catalog);
        assert!(workload("not-a-workload").is_none());
    }

    #[test]
    fn names_are_unique() {
        let all = all_workloads();
        let unique: std::collections::HashSet<_> = all.iter().map(|w| w.name.clone()).collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn profiles_are_deterministic() {
        assert_eq!(all_workloads(), all_workloads());
    }

    #[test]
    fn representative_subset_is_stratified() {
        let subset = representative_subset();
        assert!(subset.len() >= 25 && subset.len() < 61);
        assert!(subset.iter().any(|w| w.intensity() == MemoryIntensity::High));
        assert!(subset.iter().any(|w| w.intensity() == MemoryIntensity::Medium));
        assert!(subset.iter().any(|w| w.intensity() == MemoryIntensity::Low));
    }

    #[test]
    fn bandwidth_ordering_roughly_follows_rbmpki_within_class() {
        let high = workloads_in_class(MemoryIntensity::High);
        let max_bw =
            high.iter().cloned().max_by(|a, b| a.bandwidth_mbps.total_cmp(&b.bandwidth_mbps)).unwrap();
        let min_bw =
            high.iter().cloned().min_by(|a, b| a.bandwidth_mbps.total_cmp(&b.bandwidth_mbps)).unwrap();
        assert!(max_bw.rbmpki >= min_bw.rbmpki);
    }
}
