//! # comet-trace
//!
//! Workload catalog, synthetic memory-trace generators, and RowHammer attack
//! traces for the CoMeT reproduction.
//!
//! The CoMeT paper evaluates 61 single-core workloads (SPEC CPU2006/2017, TPC,
//! MediaBench, YCSB) and 56 homogeneous 8-core mixes, characterized by their
//! row-buffer misses per kilo-instruction (RBMPKI) and memory bandwidth
//! (Table 3). The original SimPoint traces are not redistributable, so this
//! crate generates *synthetic* LLC-miss traces calibrated to each workload's
//! published RBMPKI class, bandwidth, and a row-locality parameter — the
//! first-order statistics that determine how hard a workload presses on a
//! RowHammer tracker. See DESIGN.md for the substitution rationale.
//!
//! The crate also provides the adversarial access patterns of §8.2: a
//! traditional many-row RowHammer attack, a CoMeT-targeted RAT-thrashing
//! attack, and a Hydra-targeted group-counter-saturating attack.
//!
//! ## Example
//!
//! ```rust
//! use comet_trace::{catalog, SyntheticTrace, TraceSource};
//! use comet_dram::DramGeometry;
//!
//! let profile = catalog::workload("519.lbm").expect("known workload");
//! let mut trace = SyntheticTrace::new(profile.clone(), DramGeometry::paper_default(), 42);
//! let record = trace.next_record();
//! assert!(record.gap < 10_000);
//! ```

pub mod attack;
pub mod catalog;
pub mod mix;
pub mod profile;
pub mod request;
pub mod synth;

pub use attack::{AttackKind, AttackTrace};
pub use catalog::{all_workloads, workload};
pub use mix::{homogeneous_mix, MultiCoreMix};
pub use profile::{MemoryIntensity, WorkloadProfile};
pub use request::{TraceRecord, TraceSource};
pub use synth::SyntheticTrace;
