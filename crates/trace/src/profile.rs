//! Workload profiles: the statistics a synthetic trace is generated from.

use serde::{Deserialize, Serialize};

/// Memory-intensity class used by the paper to group workloads (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MemoryIntensity {
    /// RBMPKI in `[0, 2)`.
    Low,
    /// RBMPKI in `[2, 10)`.
    Medium,
    /// RBMPKI of 10 or more.
    High,
}

impl MemoryIntensity {
    /// Classifies an RBMPKI value the way Table 3 does.
    pub fn classify(rbmpki: f64) -> Self {
        if rbmpki >= 10.0 {
            MemoryIntensity::High
        } else if rbmpki >= 2.0 {
            MemoryIntensity::Medium
        } else {
            MemoryIntensity::Low
        }
    }
}

/// The statistical profile a synthetic workload trace is generated from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Workload name (matches Table 3, e.g. `"519.lbm"`).
    pub name: String,
    /// Row-buffer misses per kilo-instruction.
    pub rbmpki: f64,
    /// Average memory bandwidth in MB/s (from Table 3, used for reporting).
    pub bandwidth_mbps: f64,
    /// Fraction of memory accesses that hit the currently open row.
    pub row_locality: f64,
    /// Number of distinct DRAM rows the workload touches per bank.
    pub footprint_rows_per_bank: usize,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// Number of concurrent access streams (spatial streams / MLP proxy).
    pub streams: usize,
}

impl WorkloadProfile {
    /// The paper's memory-intensity class for this profile.
    pub fn intensity(&self) -> MemoryIntensity {
        MemoryIntensity::classify(self.rbmpki)
    }

    /// Memory accesses per kilo-instruction (row hits + row misses).
    pub fn accesses_per_kilo_instruction(&self) -> f64 {
        if self.row_locality >= 1.0 {
            self.rbmpki
        } else {
            self.rbmpki / (1.0 - self.row_locality)
        }
    }

    /// Mean instruction gap between two consecutive memory accesses.
    pub fn mean_gap(&self) -> f64 {
        let apki = self.accesses_per_kilo_instruction();
        if apki <= 0.0 {
            1.0e6
        } else {
            1000.0 / apki
        }
    }

    /// Validates the profile, returning human-readable problems (empty = OK).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.rbmpki < 0.0 {
            problems.push("rbmpki must be non-negative".to_string());
        }
        if !(0.0..1.0).contains(&self.row_locality) {
            problems.push("row_locality must be in [0, 1)".to_string());
        }
        if !(0.0..=1.0).contains(&self.write_fraction) {
            problems.push("write_fraction must be in [0, 1]".to_string());
        }
        if self.footprint_rows_per_bank == 0 {
            problems.push("footprint must cover at least one row per bank".to_string());
        }
        if self.streams == 0 {
            problems.push("at least one access stream is required".to_string());
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(rbmpki: f64) -> WorkloadProfile {
        WorkloadProfile {
            name: "test".to_string(),
            rbmpki,
            bandwidth_mbps: 1000.0,
            row_locality: 0.5,
            footprint_rows_per_bank: 256,
            write_fraction: 0.2,
            streams: 4,
        }
    }

    #[test]
    fn classification_matches_table3_boundaries() {
        assert_eq!(MemoryIntensity::classify(0.0), MemoryIntensity::Low);
        assert_eq!(MemoryIntensity::classify(1.99), MemoryIntensity::Low);
        assert_eq!(MemoryIntensity::classify(2.0), MemoryIntensity::Medium);
        assert_eq!(MemoryIntensity::classify(9.99), MemoryIntensity::Medium);
        assert_eq!(MemoryIntensity::classify(10.0), MemoryIntensity::High);
    }

    #[test]
    fn accesses_scale_with_locality() {
        let p = profile(5.0);
        // 5 row misses per KI at 50% locality = 10 accesses per KI.
        assert!((p.accesses_per_kilo_instruction() - 10.0).abs() < 1e-9);
        assert!((p.mean_gap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn intensity_uses_rbmpki() {
        assert_eq!(profile(15.0).intensity(), MemoryIntensity::High);
        assert_eq!(profile(5.0).intensity(), MemoryIntensity::Medium);
        assert_eq!(profile(0.5).intensity(), MemoryIntensity::Low);
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut p = profile(5.0);
        assert!(p.validate().is_empty());
        p.row_locality = 1.5;
        p.streams = 0;
        assert_eq!(p.validate().len(), 2);
    }
}
