//! Synthetic LLC-miss trace generation from a workload profile.

use crate::profile::WorkloadProfile;
use crate::request::{TraceRecord, TraceSource};
use comet_dram::{AddressMapper, AddressScheme, DramAddr, DramGeometry};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates an endless memory-access stream matching a [`WorkloadProfile`].
///
/// The generator maintains `streams` concurrent access streams. Each access
/// picks a stream and either continues sequentially within that stream's open
/// row (probability `row_locality`) or jumps to a different row of the
/// workload's footprint, spread round-robin across all banks. Instruction gaps
/// between accesses are drawn from a geometric distribution whose mean matches
/// the profile's accesses-per-kilo-instruction, so both the memory intensity
/// and the row-buffer behaviour of the synthetic trace track the profile.
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    profile: WorkloadProfile,
    mapper: AddressMapper,
    rng: SmallRng,
    /// Open position of each stream: (bank index, row within footprint, column).
    streams: Vec<StreamState>,
    mean_gap: f64,
}

#[derive(Debug, Clone, Copy)]
struct StreamState {
    bank: usize,
    row: usize,
    column: usize,
}

impl SyntheticTrace {
    /// Creates a generator for `profile` on `geometry`, deterministic under `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`WorkloadProfile::validate`].
    pub fn new(profile: WorkloadProfile, geometry: DramGeometry, seed: u64) -> Self {
        let problems = profile.validate();
        assert!(problems.is_empty(), "invalid workload profile: {problems:?}");
        let mut rng = SmallRng::seed_from_u64(seed);
        // Streams spread over every bank of every channel so multi-channel
        // systems see balanced load (identical to the per-channel behaviour
        // when `geometry.channels == 1`).
        let banks = geometry.total_banks();
        let footprint = profile.footprint_rows_per_bank.min(geometry.rows_per_bank);
        let streams = (0..profile.streams)
            .map(|_| StreamState {
                bank: rng.gen_range(0..banks),
                row: rng.gen_range(0..footprint),
                column: 0,
            })
            .collect();
        let mean_gap = profile.mean_gap();
        SyntheticTrace {
            profile,
            mapper: AddressMapper::new(geometry, AddressScheme::RoRaBgBaCoCh),
            rng,
            streams,
            mean_gap,
        }
    }

    /// The profile this trace was generated from.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    fn geometry(&self) -> &DramGeometry {
        self.mapper.geometry()
    }

    fn sample_gap(&mut self) -> u32 {
        // Geometric distribution with the configured mean, capped to keep the
        // simulator's idle-skipping cheap.
        if self.mean_gap <= 1.0 {
            return 0;
        }
        let p = 1.0 / self.mean_gap;
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap = (u.ln() / (1.0 - p).ln()).floor();
        gap.min(1_000_000.0) as u32
    }

    fn dram_addr(&self, s: StreamState) -> DramAddr {
        let g = self.geometry();
        let banks_per_rank = g.banks_per_rank();
        let channel = s.bank / g.banks_per_channel();
        let in_channel = s.bank % g.banks_per_channel();
        let rank = in_channel / banks_per_rank;
        let in_rank = in_channel % banks_per_rank;
        DramAddr {
            channel,
            rank,
            bank_group: in_rank / g.banks_per_bank_group,
            bank: in_rank % g.banks_per_bank_group,
            row: s.row,
            column: s.column,
        }
    }
}

impl TraceSource for SyntheticTrace {
    fn next_record(&mut self) -> TraceRecord {
        let g = self.geometry().clone();
        let footprint = self.profile.footprint_rows_per_bank.min(g.rows_per_bank);
        let stream_index = self.rng.gen_range(0..self.streams.len());
        let row_hit = self.rng.gen_bool(self.profile.row_locality);
        {
            let banks = g.total_banks();
            let columns = g.columns_per_row;
            let stream = &mut self.streams[stream_index];
            if row_hit {
                // Continue within the open row (sequential column access).
                stream.column = (stream.column + 1) % columns;
            } else {
                // Jump to a different row, possibly in a different bank.
                stream.bank = self.rng.gen_range(0..banks);
                stream.row = self.rng.gen_range(0..footprint);
                stream.column = self.rng.gen_range(0..columns);
            }
        }
        let stream = self.streams[stream_index];
        let addr = self.mapper.unmap(&self.dram_addr(stream));
        let is_write = self.rng.gen_bool(self.profile.write_fraction);
        TraceRecord { gap: self.sample_gap(), addr, is_write }
    }

    fn name(&self) -> &str {
        &self.profile.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use std::collections::HashSet;

    fn generate(name: &str, n: usize, seed: u64) -> (SyntheticTrace, Vec<TraceRecord>) {
        let profile = catalog::workload(name).unwrap();
        let mut t = SyntheticTrace::new(profile, DramGeometry::paper_default(), seed);
        let records: Vec<TraceRecord> = (0..n).map(|_| t.next_record()).collect();
        (t, records)
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (_, a) = generate("429.mcf", 5000, 7);
        let (_, b) = generate("429.mcf", 5000, 7);
        assert_eq!(a, b);
        let (_, c) = generate("429.mcf", 5000, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn mean_gap_tracks_profile() {
        let (trace, records) = generate("519.lbm", 50_000, 1);
        let mean: f64 = records.iter().map(|r| r.gap as f64).sum::<f64>() / records.len() as f64;
        let expected = trace.profile().mean_gap();
        assert!((mean - expected).abs() / expected < 0.1, "mean gap {mean} vs expected {expected}");
    }

    #[test]
    fn high_intensity_has_smaller_gaps_than_low() {
        let (_, high) = generate("bfs_ny", 20_000, 3);
        let (_, low) = generate("541.leela", 2_000, 3);
        let mean = |v: &[TraceRecord]| v.iter().map(|r| r.gap as f64).sum::<f64>() / v.len() as f64;
        assert!(mean(&high) * 10.0 < mean(&low));
    }

    #[test]
    fn footprint_bounds_distinct_rows() {
        let profile = catalog::workload("401.bzip2").unwrap();
        let footprint = profile.footprint_rows_per_bank;
        let geometry = DramGeometry::paper_default();
        let mapper = AddressMapper::new(geometry.clone(), AddressScheme::RoRaBgBaCoCh);
        let mut t = SyntheticTrace::new(profile, geometry.clone(), 5);
        let mut rows = HashSet::new();
        for _ in 0..20_000 {
            let r = t.next_record();
            let addr = mapper.map(r.addr);
            rows.insert((addr.flat_bank(&geometry), addr.row));
            assert!(addr.row < footprint, "row {} outside footprint {}", addr.row, footprint);
        }
        assert!(rows.len() > 10, "trace should touch many distinct rows");
    }

    #[test]
    fn write_fraction_is_respected() {
        let (trace, records) = generate("433.milc", 50_000, 11);
        let writes = records.iter().filter(|r| r.is_write).count() as f64;
        let fraction = writes / records.len() as f64;
        let expected = trace.profile().write_fraction;
        assert!((fraction - expected).abs() < 0.02, "write fraction {fraction} vs {expected}");
    }

    #[test]
    fn addresses_are_cacheline_aligned() {
        let (_, records) = generate("450.soplex", 1_000, 2);
        assert!(records.iter().all(|r| r.addr % 64 == 0));
    }

    #[test]
    fn row_hit_fraction_roughly_matches_locality() {
        let profile = catalog::workload("520.omnetpp").unwrap();
        let locality = profile.row_locality;
        let geometry = DramGeometry::paper_default();
        let mapper = AddressMapper::new(geometry.clone(), AddressScheme::RoRaBgBaCoCh);
        let mut t = SyntheticTrace::new(profile, geometry.clone(), 9);
        // Track the open row per bank as an idealized row-buffer and measure hits.
        let mut open: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        let mut hits = 0usize;
        let n = 50_000;
        for _ in 0..n {
            let r = t.next_record();
            let addr = mapper.map(r.addr);
            let bank = addr.flat_bank(&geometry);
            if open.get(&bank) == Some(&addr.row) {
                hits += 1;
            }
            open.insert(bank, addr.row);
        }
        let measured = hits as f64 / n as f64;
        // Interleaving across streams and banks loses some locality relative to the
        // target; accept a generous band around it.
        assert!(
            measured > locality * 0.5 && measured < locality * 1.3 + 0.05,
            "measured locality {measured} vs target {locality}"
        );
    }
}
