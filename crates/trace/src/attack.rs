//! RowHammer attack traces (§8.2 of the paper).

use crate::request::{TraceRecord, TraceSource};
use comet_dram::{AddressMapper, AddressScheme, DramAddr, DramGeometry};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// The adversarial access patterns the paper evaluates.
///
/// `Hash` and `Serialize` let attack studies participate in experiment-cell
/// identity (the experiment service keys its result cache on the full cell,
/// attack parameters included).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum AttackKind {
    /// A traditional many-sided RowHammer attack: repeatedly activate a set of
    /// aggressor rows across all banks as fast as the DRAM protocol allows
    /// (the paper models one ACT every 20 ns while executing the attack trace).
    Traditional {
        /// Number of aggressor rows hammered per bank.
        rows_per_bank: usize,
    },
    /// CoMeT-targeted attack: hammer more distinct rows to the preventive
    /// refresh threshold than the Recent Aggressor Table can hold, forcing RAT
    /// evictions and early preventive refreshes.
    CometTargeted {
        /// Number of distinct aggressor rows (should exceed the RAT capacity).
        rows_per_bank: usize,
    },
    /// Hydra-targeted attack: touch many distinct rows of the same row groups a
    /// few times each, saturating Hydra's group counters and forcing off-chip
    /// row-counter traffic.
    HydraTargeted {
        /// Number of row groups sprayed per bank.
        groups_per_bank: usize,
        /// Rows per group in the Hydra configuration under attack.
        rows_per_group: usize,
    },
}

/// An endless attack trace.
///
/// Attack records always use `gap = 0` (the attacker issues memory requests as
/// fast as it can) and reads (writes would not change the activation stream).
#[derive(Debug, Clone)]
pub struct AttackTrace {
    kind: AttackKind,
    name: String,
    mapper: AddressMapper,
    rng: SmallRng,
    position: usize,
}

impl AttackTrace {
    /// Creates an attack trace of `kind` against `geometry`.
    pub fn new(kind: AttackKind, geometry: DramGeometry, seed: u64) -> Self {
        let name = match kind {
            AttackKind::Traditional { .. } => "attack-traditional",
            AttackKind::CometTargeted { .. } => "attack-comet-targeted",
            AttackKind::HydraTargeted { .. } => "attack-hydra-targeted",
        };
        AttackTrace {
            kind,
            name: name.to_string(),
            mapper: AddressMapper::new(geometry, AddressScheme::RoRaBgBaCoCh),
            rng: SmallRng::seed_from_u64(seed),
            position: 0,
        }
    }

    /// The attack pattern being generated.
    pub fn kind(&self) -> AttackKind {
        self.kind
    }

    fn geometry(&self) -> &DramGeometry {
        self.mapper.geometry()
    }

    fn addr_for(&self, bank: usize, row: usize) -> DramAddr {
        let g = self.geometry();
        let banks_per_rank = g.banks_per_rank();
        let channel = bank / g.banks_per_channel();
        let in_channel = bank % g.banks_per_channel();
        DramAddr {
            channel,
            rank: in_channel / banks_per_rank,
            bank_group: (in_channel % banks_per_rank) / g.banks_per_bank_group,
            bank: (in_channel % banks_per_rank) % g.banks_per_bank_group,
            row: row % g.rows_per_bank,
            column: 0,
        }
    }
}

impl TraceSource for AttackTrace {
    fn next_record(&mut self) -> TraceRecord {
        // Attacks sweep every bank of every channel, so each per-channel
        // tracker shard faces the same adversarial pressure.
        let banks = self.geometry().total_banks();
        let addr = match self.kind {
            AttackKind::Traditional { rows_per_bank } => {
                // Round-robin over (bank, aggressor row) pairs; aggressors are spaced
                // two rows apart so their victim sets do not overlap.
                let bank = self.position % banks;
                let row_index = (self.position / banks) % rows_per_bank;
                self.addr_for(bank, 2 * row_index + 1)
            }
            AttackKind::CometTargeted { rows_per_bank } => {
                // Sweep a large set of distinct rows in one bank at a time so each
                // reaches the preventive refresh threshold and competes for RAT slots.
                let bank = (self.position / (rows_per_bank * 64)) % banks;
                let row_index = self.position % rows_per_bank;
                self.addr_for(bank, 4 * row_index + 1)
            }
            AttackKind::HydraTargeted { groups_per_bank, rows_per_group } => {
                // Touch a random row of a random group: group counters climb while no
                // individual row gets hammered.
                let bank = self.rng.gen_range(0..banks);
                let group = self.rng.gen_range(0..groups_per_bank);
                let row_in_group = self.rng.gen_range(0..rows_per_group);
                self.addr_for(bank, group * rows_per_group + row_in_group)
            }
        };
        self.position = self.position.wrapping_add(1);
        TraceRecord { gap: 0, addr: self.mapper.unmap(&addr), is_write: false }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn decode(trace: &mut AttackTrace, n: usize) -> Vec<DramAddr> {
        let mapper = AddressMapper::new(trace.geometry().clone(), AddressScheme::RoRaBgBaCoCh);
        (0..n).map(|_| mapper.map(trace.next_record().addr)).collect()
    }

    #[test]
    fn traditional_attack_hammers_fixed_rows_across_banks() {
        let g = DramGeometry::paper_default();
        let mut t = AttackTrace::new(AttackKind::Traditional { rows_per_bank: 4 }, g.clone(), 0);
        let addrs = decode(&mut t, 10_000);
        let banks: HashSet<usize> = addrs.iter().map(|a| a.flat_bank(&g)).collect();
        assert_eq!(banks.len(), g.banks_per_channel(), "attack must cover all banks");
        let rows: HashSet<usize> = addrs.iter().map(|a| a.row).collect();
        assert_eq!(rows.len(), 4, "exactly rows_per_bank distinct rows per bank");
        // Every record is back-to-back.
        let mut t2 = AttackTrace::new(AttackKind::Traditional { rows_per_bank: 4 }, g, 0);
        assert!((0..100).all(|_| t2.next_record().gap == 0));
    }

    #[test]
    fn traditional_attack_repeats_each_row_many_times() {
        let g = DramGeometry::paper_default();
        let mut t = AttackTrace::new(AttackKind::Traditional { rows_per_bank: 2 }, g.clone(), 0);
        let addrs = decode(&mut t, 6400);
        let mut per_row: HashMap<(usize, usize), usize> = HashMap::new();
        for a in &addrs {
            *per_row.entry((a.flat_bank(&g), a.row)).or_insert(0) += 1;
        }
        // 6400 accesses over 32 banks × 2 rows = 100 activations per aggressor.
        for (&key, &count) in &per_row {
            assert_eq!(count, 100, "row {key:?}");
        }
    }

    #[test]
    fn comet_targeted_attack_uses_many_distinct_rows_per_bank() {
        let g = DramGeometry::paper_default();
        let rows_per_bank = 512; // well above the 128-entry RAT
        let mut t = AttackTrace::new(AttackKind::CometTargeted { rows_per_bank }, g.clone(), 0);
        let addrs = decode(&mut t, rows_per_bank * 8);
        let first_bank = addrs[0].flat_bank(&g);
        let rows_in_first_bank: HashSet<usize> =
            addrs.iter().filter(|a| a.flat_bank(&g) == first_bank).map(|a| a.row).collect();
        assert!(rows_in_first_bank.len() > 128, "must exceed RAT capacity");
    }

    #[test]
    fn hydra_targeted_attack_spreads_within_groups() {
        let g = DramGeometry::paper_default();
        let mut t = AttackTrace::new(
            AttackKind::HydraTargeted { groups_per_bank: 8, rows_per_group: 128 },
            g.clone(),
            3,
        );
        let addrs = decode(&mut t, 20_000);
        let groups: HashSet<usize> = addrs.iter().map(|a| a.row / 128).collect();
        assert!(groups.len() <= 8);
        // No single row is hammered heavily.
        let mut per_row: HashMap<usize, usize> = HashMap::new();
        for a in &addrs {
            *per_row.entry(a.row).or_insert(0) += 1;
        }
        let max = per_row.values().max().copied().unwrap_or(0);
        assert!(max < 200, "no row should be heavily hammered (max = {max})");
    }

    #[test]
    fn attack_names_are_stable() {
        let g = DramGeometry::paper_default();
        assert_eq!(
            AttackTrace::new(AttackKind::Traditional { rows_per_bank: 1 }, g.clone(), 0).name(),
            "attack-traditional"
        );
        assert_eq!(
            AttackTrace::new(AttackKind::CometTargeted { rows_per_bank: 1 }, g.clone(), 0).name(),
            "attack-comet-targeted"
        );
        assert_eq!(
            AttackTrace::new(AttackKind::HydraTargeted { groups_per_bank: 1, rows_per_group: 128 }, g, 0)
                .name(),
            "attack-hydra-targeted"
        );
    }
}
