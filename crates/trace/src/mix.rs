//! Multi-programmed workload mixes for the 8-core evaluation.

use crate::catalog;
use crate::profile::WorkloadProfile;
use serde::{Deserialize, Serialize};

/// A multi-core workload mix: one profile per core.
///
/// The paper evaluates 56 *homogeneous* 8-core mixes — eight copies of the same
/// single-core workload running together — which is the configuration
/// [`homogeneous_mix`] produces. Heterogeneous mixes can be built directly from
/// profiles when needed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiCoreMix {
    /// Mix name used in reports.
    pub name: String,
    /// One workload profile per core.
    pub cores: Vec<WorkloadProfile>,
}

impl MultiCoreMix {
    /// Number of cores in the mix.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Aggregate memory bandwidth demand of the mix in MB/s.
    pub fn total_bandwidth_mbps(&self) -> f64 {
        self.cores.iter().map(|c| c.bandwidth_mbps).sum()
    }
}

/// Builds the homogeneous `cores`-copy mix of `workload_name`.
///
/// Returns `None` if the workload is not in the Table 3 catalog.
pub fn homogeneous_mix(workload_name: &str, cores: usize) -> Option<MultiCoreMix> {
    let profile = catalog::workload(workload_name)?;
    Some(MultiCoreMix { name: format!("{workload_name}-x{cores}"), cores: vec![profile; cores] })
}

/// All homogeneous 8-core mixes the paper evaluates (one per catalog workload
/// that exerts measurable memory pressure; the paper uses 56 of the 61).
pub fn paper_eight_core_mixes() -> Vec<MultiCoreMix> {
    catalog::all_workloads()
        .into_iter()
        .filter(|w| w.bandwidth_mbps >= 10.0)
        .map(|w| MultiCoreMix { name: format!("{}-x8", w.name), cores: vec![w; 8] })
        .collect()
}

/// The paper's *heterogeneous* mixed medium/high-intensity 8-core mixes:
/// four medium-intensity and four high-intensity workloads per mix, paired
/// deterministically across the two classes (medium `i` with high `i`,
/// rotating through both lists), so every mix has real contention between
/// latency-sensitive and bandwidth-hungry cores — the configuration where
/// weighted speedup with *true* alone-IPC normalization differs from the
/// homogeneous normalized-IPC shortcut.
pub fn mixed_intensity_eight_core_mixes() -> Vec<MultiCoreMix> {
    let workloads = catalog::all_workloads();
    let medium: Vec<WorkloadProfile> = workloads
        .iter()
        .filter(|w| w.intensity() == crate::profile::MemoryIntensity::Medium)
        .cloned()
        .collect();
    let high: Vec<WorkloadProfile> = workloads
        .iter()
        .filter(|w| w.intensity() == crate::profile::MemoryIntensity::High)
        .cloned()
        .collect();
    if medium.is_empty() || high.is_empty() {
        return Vec::new();
    }
    // 56 mixes — the paper's full-scope mix count, so every ExperimentScope
    // draws real coverage (`take(scope.mix_count())`). The medium picks walk
    // the medium list by mix index while the high picks walk the high list
    // with coprime strides, so all 56 (medium-window, high-window) pairings
    // are distinct for the catalog's 20 medium × 14 high workloads.
    (0..56)
        .map(|index| {
            let mut cores = Vec::with_capacity(8);
            for slot in 0..4 {
                cores.push(medium[(index + slot) % medium.len()].clone());
                cores.push(high[(index * 5 + slot * 3) % high.len()].clone());
            }
            MultiCoreMix { name: format!("mixMH{index:02}"), cores }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_mix_replicates_profile() {
        let mix = homogeneous_mix("429.mcf", 8).unwrap();
        assert_eq!(mix.core_count(), 8);
        assert!(mix.cores.iter().all(|c| c.name == "429.mcf"));
        assert_eq!(mix.name, "429.mcf-x8");
    }

    #[test]
    fn unknown_workload_returns_none() {
        assert!(homogeneous_mix("no-such-workload", 8).is_none());
    }

    #[test]
    fn paper_mixes_are_around_56() {
        let mixes = paper_eight_core_mixes();
        assert!((50..=61).contains(&mixes.len()), "got {} mixes", mixes.len());
        assert!(mixes.iter().all(|m| m.core_count() == 8));
    }

    #[test]
    fn mixed_intensity_mixes_pair_medium_and_high_cores() {
        use crate::profile::MemoryIntensity;
        let mixes = mixed_intensity_eight_core_mixes();
        // Full-scope coverage: every scope's mix_count is satisfiable.
        assert_eq!(mixes.len(), 56);
        // The pairings must actually differ across mixes, not just rotate in
        // lockstep (distinct (medium, high) windows).
        let signatures: std::collections::HashSet<Vec<&str>> =
            mixes.iter().map(|m| m.cores.iter().map(|c| c.name.as_str()).collect()).collect();
        assert_eq!(signatures.len(), mixes.len(), "mix core lists must be pairwise distinct");
        for mix in &mixes {
            assert_eq!(mix.core_count(), 8, "{}", mix.name);
            let medium = mix.cores.iter().filter(|c| c.intensity() == MemoryIntensity::Medium).count();
            let high = mix.cores.iter().filter(|c| c.intensity() == MemoryIntensity::High).count();
            assert_eq!((medium, high), (4, 4), "{} must pair 4 medium with 4 high", mix.name);
        }
        // Names are unique and deterministic.
        let names: std::collections::HashSet<&str> = mixes.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names.len(), mixes.len());
        assert_eq!(mixed_intensity_eight_core_mixes(), mixes);
    }

    #[test]
    fn total_bandwidth_sums_cores() {
        let mix = homogeneous_mix("519.lbm", 8).unwrap();
        let single = catalog::workload("519.lbm").unwrap().bandwidth_mbps;
        assert!((mix.total_bandwidth_mbps() - 8.0 * single).abs() < 1e-9);
    }
}
