//! Trace records and the trace-source abstraction.

use comet_dram::PhysAddr;
use serde::{Deserialize, Serialize};

/// One record of an LLC-miss trace: `gap` non-memory instructions followed by
/// one memory access.
///
/// This is the same shape as Ramulator's CPU trace format ("number of CPU
/// instructions before the request, address, read/write"), which the paper's
/// SimPoint traces use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Number of non-memory instructions the core retires before this access.
    pub gap: u32,
    /// Physical byte address of the access (cache-line aligned).
    pub addr: PhysAddr,
    /// Whether the access is a write-back (posted) rather than a demand read.
    pub is_write: bool,
}

impl TraceRecord {
    /// Convenience constructor for a read record.
    pub fn read(gap: u32, addr: PhysAddr) -> Self {
        TraceRecord { gap, addr, is_write: false }
    }

    /// Convenience constructor for a write record.
    pub fn write(gap: u32, addr: PhysAddr) -> Self {
        TraceRecord { gap, addr, is_write: true }
    }
}

/// An endless source of trace records.
///
/// Synthetic generators are infinite: the simulator decides when to stop
/// (after a fixed number of instructions or cycles). Implementations must be
/// deterministic for a given seed so experiments are reproducible.
pub trait TraceSource {
    /// Produces the next record.
    fn next_record(&mut self) -> TraceRecord;

    /// A short, stable name for reports (workload name or attack kind).
    fn name(&self) -> &str;
}

/// A trivial trace source that replays a fixed sequence in a loop — useful in
/// unit tests and for hand-crafted microbenchmarks.
#[derive(Debug, Clone)]
pub struct ReplayTrace {
    name: String,
    records: Vec<TraceRecord>,
    position: usize,
}

impl ReplayTrace {
    /// Creates a replaying source over `records`.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty.
    pub fn new(name: impl Into<String>, records: Vec<TraceRecord>) -> Self {
        assert!(!records.is_empty(), "replay trace needs at least one record");
        ReplayTrace { name: name.into(), records, position: 0 }
    }
}

impl TraceSource for ReplayTrace {
    fn next_record(&mut self) -> TraceRecord {
        let r = self.records[self.position];
        self.position = (self.position + 1) % self.records.len();
        r
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_direction() {
        assert!(!TraceRecord::read(3, 64).is_write);
        assert!(TraceRecord::write(3, 64).is_write);
    }

    #[test]
    fn replay_wraps_around() {
        let mut t = ReplayTrace::new("loop", vec![TraceRecord::read(1, 0), TraceRecord::read(2, 64)]);
        assert_eq!(t.next_record().gap, 1);
        assert_eq!(t.next_record().gap, 2);
        assert_eq!(t.next_record().gap, 1);
        assert_eq!(t.name(), "loop");
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn empty_replay_rejected() {
        let _ = ReplayTrace::new("empty", vec![]);
    }
}
